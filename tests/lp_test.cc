// Tests for the sparse LP substrate: CSC matrix, basis LU, and the
// two-phase revised simplex. Includes randomized property tests comparing
// LU solves against dense Gaussian elimination and checking simplex optima
// against feasibility + weak-duality style bounds on small random LPs.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/rng.h"
#include "lp/basis_lu.h"
#include "lp/model.h"
#include "lp/simplex.h"
#include "lp/sparse.h"

namespace titan::lp {
namespace {

TEST(SparseMatrixTest, BuildsFromTripletsAndSumsDuplicates) {
  std::vector<SparseMatrix::Triplet> trips = {
      {0, 0, 1.0}, {1, 0, 2.0}, {0, 1, 3.0}, {0, 1, 4.0}, {2, 2, -1.0}};
  const SparseMatrix m = SparseMatrix::from_triplets(3, 3, trips);
  EXPECT_EQ(m.rows(), 3);
  EXPECT_EQ(m.cols(), 3);
  EXPECT_EQ(m.nnz(), 4u);  // duplicate (0,1) merged

  std::vector<double> y(3, 0.0);
  m.axpy_column(1, 1.0, y);
  EXPECT_DOUBLE_EQ(y[0], 7.0);
  EXPECT_DOUBLE_EQ(y[1], 0.0);
}

TEST(SparseMatrixTest, DotColumn) {
  std::vector<SparseMatrix::Triplet> trips = {{0, 0, 2.0}, {2, 0, 5.0}};
  const SparseMatrix m = SparseMatrix::from_triplets(3, 1, trips);
  const std::vector<double> y = {1.0, 10.0, 3.0};
  EXPECT_DOUBLE_EQ(m.dot_column(0, y), 2.0 + 15.0);
}

TEST(SparseMatrixTest, ZeroSumDuplicatesDropped) {
  std::vector<SparseMatrix::Triplet> trips = {{0, 0, 1.0}, {0, 0, -1.0}, {1, 0, 2.0}};
  const SparseMatrix m = SparseMatrix::from_triplets(2, 1, trips);
  EXPECT_EQ(m.nnz(), 1u);
}

// --- BasisLu vs dense reference -------------------------------------------

// Dense solve of A x = b via Gaussian elimination with partial pivoting.
std::vector<double> dense_solve(std::vector<std::vector<double>> a, std::vector<double> b) {
  const std::size_t n = b.size();
  for (std::size_t k = 0; k < n; ++k) {
    std::size_t piv = k;
    for (std::size_t i = k + 1; i < n; ++i)
      if (std::abs(a[i][k]) > std::abs(a[piv][k])) piv = i;
    std::swap(a[k], a[piv]);
    std::swap(b[k], b[piv]);
    for (std::size_t i = k + 1; i < n; ++i) {
      const double f = a[i][k] / a[k][k];
      for (std::size_t j = k; j < n; ++j) a[i][j] -= f * a[k][j];
      b[i] -= f * b[k];
    }
  }
  std::vector<double> x(n);
  for (std::size_t i = n; i-- > 0;) {
    double acc = b[i];
    for (std::size_t j = i + 1; j < n; ++j) acc -= a[i][j] * x[j];
    x[i] = acc / a[i][i];
  }
  return x;
}

struct RandomBasis {
  SparseMatrix a;
  std::vector<int> basis;
  std::vector<std::vector<double>> dense;
};

RandomBasis make_random_basis(int m, double density, core::Rng& rng) {
  RandomBasis rb;
  std::vector<SparseMatrix::Triplet> trips;
  rb.dense.assign(static_cast<std::size_t>(m), std::vector<double>(static_cast<std::size_t>(m), 0.0));
  for (int j = 0; j < m; ++j) {
    // Guarantee nonsingularity-ish: strong diagonal + sparse off-diagonals.
    const double d = rng.uniform(1.0, 3.0) * (rng.chance(0.5) ? 1.0 : -1.0);
    trips.push_back({j, j, d});
    rb.dense[static_cast<std::size_t>(j)][static_cast<std::size_t>(j)] = d;
    for (int i = 0; i < m; ++i) {
      if (i == j || !rng.chance(density)) continue;
      const double v = rng.uniform(-1.0, 1.0);
      trips.push_back({i, j, v});
      rb.dense[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] = v;
    }
    rb.basis.push_back(j);
  }
  rb.a = SparseMatrix::from_triplets(m, m, std::move(trips));
  return rb;
}

class BasisLuRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(BasisLuRandomTest, FtranMatchesDenseSolve) {
  core::Rng rng(1000 + static_cast<std::uint64_t>(GetParam()));
  const int m = 5 + GetParam() * 7;
  RandomBasis rb = make_random_basis(m, 0.15, rng);

  BasisLu lu;
  ASSERT_TRUE(lu.factorize(rb.a, rb.basis));

  std::vector<double> b(static_cast<std::size_t>(m));
  for (auto& v : b) v = rng.uniform(-5.0, 5.0);
  std::vector<double> x = b;
  lu.ftran(x);
  const std::vector<double> expected = dense_solve(rb.dense, b);
  for (int i = 0; i < m; ++i)
    EXPECT_NEAR(x[static_cast<std::size_t>(i)], expected[static_cast<std::size_t>(i)], 1e-8)
        << "row " << i;
}

TEST_P(BasisLuRandomTest, BtranMatchesDenseTransposeSolve) {
  core::Rng rng(2000 + static_cast<std::uint64_t>(GetParam()));
  const int m = 5 + GetParam() * 7;
  RandomBasis rb = make_random_basis(m, 0.15, rng);

  BasisLu lu;
  ASSERT_TRUE(lu.factorize(rb.a, rb.basis));

  std::vector<double> c(static_cast<std::size_t>(m));
  for (auto& v : c) v = rng.uniform(-5.0, 5.0);
  std::vector<double> y = c;
  lu.btran(y);

  // Dense transpose.
  std::vector<std::vector<double>> at(static_cast<std::size_t>(m),
                                      std::vector<double>(static_cast<std::size_t>(m)));
  for (int i = 0; i < m; ++i)
    for (int j = 0; j < m; ++j)
      at[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] =
          rb.dense[static_cast<std::size_t>(j)][static_cast<std::size_t>(i)];
  const std::vector<double> expected = dense_solve(at, c);
  for (int i = 0; i < m; ++i)
    EXPECT_NEAR(y[static_cast<std::size_t>(i)], expected[static_cast<std::size_t>(i)], 1e-8);
}

TEST_P(BasisLuRandomTest, EtaUpdateMatchesRefactorization) {
  core::Rng rng(3000 + static_cast<std::uint64_t>(GetParam()));
  const int m = 5 + GetParam() * 7;
  RandomBasis rb = make_random_basis(m, 0.2, rng);

  BasisLu lu;
  ASSERT_TRUE(lu.factorize(rb.a, rb.basis));

  // Build an extra column to swap in at position r.
  const int r = static_cast<int>(rng.uniform_int(0, m - 1));
  std::vector<SparseMatrix::Triplet> extra_trips;
  std::vector<double> extra_col(static_cast<std::size_t>(m), 0.0);
  for (int i = 0; i < m; ++i) {
    if (i == r || rng.chance(0.2)) {
      const double v = rng.uniform(0.5, 2.0);
      extra_trips.push_back({i, 0, v});
      extra_col[static_cast<std::size_t>(i)] = v;
    }
  }
  // FTRAN the new column with the current factorization.
  std::vector<double> alpha = extra_col;
  lu.ftran(alpha);
  if (std::abs(alpha[static_cast<std::size_t>(r)]) < 1e-6) GTEST_SKIP();
  ASSERT_TRUE(lu.update(r, alpha));

  // Reference: dense basis with column r replaced.
  auto dense2 = rb.dense;
  for (int i = 0; i < m; ++i)
    dense2[static_cast<std::size_t>(i)][static_cast<std::size_t>(r)] =
        extra_col[static_cast<std::size_t>(i)];

  std::vector<double> b(static_cast<std::size_t>(m));
  for (auto& v : b) v = rng.uniform(-3.0, 3.0);
  std::vector<double> x = b;
  lu.ftran(x);
  const auto expected = dense_solve(dense2, b);
  for (int i = 0; i < m; ++i)
    EXPECT_NEAR(x[static_cast<std::size_t>(i)], expected[static_cast<std::size_t>(i)], 1e-7);

  std::vector<double> c(static_cast<std::size_t>(m));
  for (auto& v : c) v = rng.uniform(-3.0, 3.0);
  std::vector<double> y = c;
  lu.btran(y);
  std::vector<std::vector<double>> at(static_cast<std::size_t>(m),
                                      std::vector<double>(static_cast<std::size_t>(m)));
  for (int i = 0; i < m; ++i)
    for (int j = 0; j < m; ++j)
      at[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] =
          dense2[static_cast<std::size_t>(j)][static_cast<std::size_t>(i)];
  const auto expected_y = dense_solve(at, c);
  for (int i = 0; i < m; ++i)
    EXPECT_NEAR(y[static_cast<std::size_t>(i)], expected_y[static_cast<std::size_t>(i)], 1e-7);
}

INSTANTIATE_TEST_SUITE_P(Sizes, BasisLuRandomTest, ::testing::Range(0, 8));

TEST(BasisLuTest, ReportsSingularMatrix) {
  // Two identical columns.
  std::vector<SparseMatrix::Triplet> trips = {{0, 0, 1.0}, {1, 0, 1.0}, {0, 1, 1.0},
                                              {1, 1, 1.0}};
  const SparseMatrix a = SparseMatrix::from_triplets(2, 2, trips);
  BasisLu lu;
  EXPECT_FALSE(lu.factorize(a, {0, 1}));
}

// --- Simplex ----------------------------------------------------------------

TEST(SimplexTest, SolvesTextbookMaximization) {
  // max 3x + 5y s.t. x <= 4; 2y <= 12; 3x + 2y <= 18  => (2, 6), obj 36.
  LpModel m;
  const int x = m.add_variable(-3.0);
  const int y = m.add_variable(-5.0);
  const int r0 = m.add_constraint(Sense::kLe, 4.0);
  const int r1 = m.add_constraint(Sense::kLe, 12.0);
  const int r2 = m.add_constraint(Sense::kLe, 18.0);
  m.add_coefficient(r0, x, 1.0);
  m.add_coefficient(r1, y, 2.0);
  m.add_coefficient(r2, x, 3.0);
  m.add_coefficient(r2, y, 2.0);

  const Solution s = solve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, -36.0, 1e-7);
  EXPECT_NEAR(s.x[static_cast<std::size_t>(x)], 2.0, 1e-7);
  EXPECT_NEAR(s.x[static_cast<std::size_t>(y)], 6.0, 1e-7);
}

TEST(SimplexTest, HandlesEqualityAndGeRows) {
  // min x + 2y s.t. x + y = 10; x >= 3; y >= 2  => (8, 2), obj 12.
  LpModel m;
  const int x = m.add_variable(1.0);
  const int y = m.add_variable(2.0);
  const int r0 = m.add_constraint(Sense::kEq, 10.0);
  const int r1 = m.add_constraint(Sense::kGe, 3.0);
  const int r2 = m.add_constraint(Sense::kGe, 2.0);
  m.add_coefficient(r0, x, 1.0);
  m.add_coefficient(r0, y, 1.0);
  m.add_coefficient(r1, x, 1.0);
  m.add_coefficient(r2, y, 1.0);

  const Solution s = solve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 12.0, 1e-7);
  EXPECT_NEAR(s.x[static_cast<std::size_t>(x)], 8.0, 1e-6);
  EXPECT_NEAR(s.x[static_cast<std::size_t>(y)], 2.0, 1e-6);
}

TEST(SimplexTest, DetectsInfeasibility) {
  LpModel m;
  const int x = m.add_variable(1.0);
  const int r0 = m.add_constraint(Sense::kLe, 1.0);
  const int r1 = m.add_constraint(Sense::kGe, 2.0);
  m.add_coefficient(r0, x, 1.0);
  m.add_coefficient(r1, x, 1.0);
  EXPECT_EQ(solve(m).status, SolveStatus::kInfeasible);
}

TEST(SimplexTest, DetectsUnboundedness) {
  LpModel m;
  const int x = m.add_variable(-1.0);  // min -x, x unbounded above
  const int y = m.add_variable(1.0);
  const int r0 = m.add_constraint(Sense::kGe, 0.0);
  m.add_coefficient(r0, x, 1.0);
  m.add_coefficient(r0, y, 1.0);
  EXPECT_EQ(solve(m).status, SolveStatus::kUnbounded);
}

TEST(SimplexTest, DegenerateProblemTerminates) {
  // Classic degenerate LP (multiple constraints active at the optimum).
  LpModel m;
  const int x = m.add_variable(-1.0);
  const int y = m.add_variable(-1.0);
  for (double b : {1.0, 1.0, 1.0}) {
    const int r = m.add_constraint(Sense::kLe, b);
    m.add_coefficient(r, x, 1.0);
    m.add_coefficient(r, y, 1.0);
  }
  const Solution s = solve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, -1.0, 1e-7);
}

TEST(SimplexTest, NegativeRhsLeRowNeedsArtificial) {
  // x <= -2 with x >= 0 is infeasible.
  LpModel m;
  const int x = m.add_variable(1.0);
  const int r = m.add_constraint(Sense::kLe, -2.0);
  m.add_coefficient(r, x, 1.0);
  EXPECT_EQ(solve(m).status, SolveStatus::kInfeasible);

  // -x <= -2 (i.e. x >= 2) is feasible with optimum x = 2.
  LpModel m2;
  const int x2 = m2.add_variable(1.0);
  const int r2 = m2.add_constraint(Sense::kLe, -2.0);
  m2.add_coefficient(r2, x2, -1.0);
  const Solution s = solve(m2);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 2.0, 1e-7);
}

// Property test: on random feasible LPs (feasibility forced by construction)
// the solver returns a point that is feasible and no worse than a known
// feasible point.
class SimplexRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(SimplexRandomTest, OptimumIsFeasibleAndBeatsKnownPoint) {
  core::Rng rng(4000 + static_cast<std::uint64_t>(GetParam()));
  const int n = 4 + GetParam() % 6;
  const int rows = 3 + GetParam() % 5;

  // Known point z >= 0.
  std::vector<double> z(static_cast<std::size_t>(n));
  for (auto& v : z) v = rng.uniform(0.0, 3.0);

  LpModel m;
  for (int j = 0; j < n; ++j) m.add_variable(rng.uniform(-1.0, 2.0));
  for (int i = 0; i < rows; ++i) {
    // a*x <= a*z + slack, guaranteeing z is feasible.
    std::vector<double> a(static_cast<std::size_t>(n));
    double az = 0.0;
    for (int j = 0; j < n; ++j) {
      a[static_cast<std::size_t>(j)] = rng.uniform(0.0, 2.0);
      az += a[static_cast<std::size_t>(j)] * z[static_cast<std::size_t>(j)];
    }
    const int r = m.add_constraint(Sense::kLe, az + rng.uniform(0.0, 1.0));
    for (int j = 0; j < n; ++j) m.add_coefficient(r, j, a[static_cast<std::size_t>(j)]);
  }
  // Box the problem so it cannot be unbounded: sum x <= big.
  const int box = m.add_constraint(Sense::kLe, 100.0);
  for (int j = 0; j < n; ++j) m.add_coefficient(box, j, 1.0);

  const Solution s = solve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_LE(m.max_violation(s.x), 1e-6);
  EXPECT_LE(s.objective, m.objective_value(z) + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Random, SimplexRandomTest, ::testing::Range(0, 20));

// --- warm starts ------------------------------------------------------------

// Shared generator for the warm-start tests: a feasible random LP with
// mixed row senses whose rhs can be scaled to fake "the next replan".
LpModel warm_test_model(core::Rng& rng, int n, int rows, double rhs_scale) {
  std::vector<double> z(static_cast<std::size_t>(n));
  for (auto& v : z) v = rng.uniform(0.5, 3.0);
  LpModel m;
  for (int j = 0; j < n; ++j) m.add_variable(rng.uniform(0.1, 2.0));
  for (int i = 0; i < rows; ++i) {
    std::vector<double> a(static_cast<std::size_t>(n));
    double az = 0.0;
    for (int j = 0; j < n; ++j) {
      a[static_cast<std::size_t>(j)] = rng.uniform(0.0, 2.0);
      az += a[static_cast<std::size_t>(j)] * z[static_cast<std::size_t>(j)];
    }
    // A mix of <= rows (z feasible with slack) and = rows (forces phase 1).
    const Sense sense = i % 3 == 0 ? Sense::kEq : Sense::kLe;
    const double slack = sense == Sense::kEq ? 0.0 : rng.uniform(0.1, 1.0);
    const int r = m.add_constraint(sense, (az + slack) * rhs_scale);
    for (int j = 0; j < n; ++j) m.add_coefficient(r, j, a[static_cast<std::size_t>(j)]);
  }
  return m;
}

// Seeding a solve with its own optimal basis must skip phase 1 entirely and
// finish in zero iterations at the same optimum.
TEST(SimplexWarmTest, OwnBasisRoundTripSolvesInZeroIterations) {
  core::Rng rng(71);
  const LpModel m = warm_test_model(rng, 8, 6, 1.0);
  const Solution cold = solve(m);
  ASSERT_EQ(cold.status, SolveStatus::kOptimal);
  ASSERT_EQ(cold.basis.entries.size(), static_cast<std::size_t>(m.num_constraints()));
  EXPECT_GT(cold.phase1_iterations, 0);  // the = rows force a cold phase 1

  const Solution warm = solve(m, cold.basis);
  ASSERT_EQ(warm.status, SolveStatus::kOptimal);
  EXPECT_TRUE(warm.warm_started);
  EXPECT_EQ(warm.iterations, 0);
  EXPECT_EQ(warm.phase1_iterations, 0);
  EXPECT_NEAR(warm.objective, cold.objective, 1e-9);
  ASSERT_EQ(warm.x.size(), cold.x.size());
  for (std::size_t j = 0; j < cold.x.size(); ++j)
    EXPECT_NEAR(warm.x[j], cold.x[j], 1e-7) << "x[" << j << "]";
}

// Property: warm-solving a perturbed-rhs successor from the predecessor's
// basis reaches the same optimum a cold solve of the successor finds, and
// the answer is feasible for the successor.
class SimplexWarmRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(SimplexWarmRandomTest, PerturbedRhsWarmSolveMatchesColdObjective) {
  core::Rng rng(6000 + static_cast<std::uint64_t>(GetParam()));
  const int n = 5 + GetParam() % 6;
  const int rows = 4 + GetParam() % 5;
  const double scale = 1.0 + rng.uniform(-0.2, 0.2);

  // Re-seed so predecessor and successor share coefficients exactly and
  // differ only in the rhs scale (the replan situation).
  const std::uint64_t model_seed = 7000 + static_cast<std::uint64_t>(GetParam());
  core::Rng rng_a(model_seed), rng_b(model_seed);
  const LpModel before = warm_test_model(rng_a, n, rows, 1.0);
  const LpModel after = warm_test_model(rng_b, n, rows, scale);

  const Solution base = solve(before);
  ASSERT_EQ(base.status, SolveStatus::kOptimal);
  const Solution cold = solve(after);
  ASSERT_EQ(cold.status, SolveStatus::kOptimal);
  const Solution warm = solve(after, base.basis);
  ASSERT_EQ(warm.status, SolveStatus::kOptimal);
  EXPECT_NEAR(warm.objective, cold.objective, 1e-6 * (1.0 + std::abs(cold.objective)));
  EXPECT_LE(after.max_violation(warm.x), 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Random, SimplexWarmRandomTest, ::testing::Range(0, 20));

// A basis that cannot map onto the model — wrong row count, out-of-range
// columns, a slack named on an equality row — must fall back to the cold
// path and still return the cold answer.
TEST(SimplexWarmTest, MismatchedBasisFallsBackToColdSolve) {
  core::Rng rng(72);
  const LpModel m = warm_test_model(rng, 8, 6, 1.0);
  const Solution cold = solve(m);
  ASSERT_EQ(cold.status, SolveStatus::kOptimal);

  Basis wrong_count;
  wrong_count.entries.resize(static_cast<std::size_t>(m.num_constraints() + 3));
  const Solution a = solve(m, wrong_count);
  EXPECT_EQ(a.status, SolveStatus::kOptimal);
  EXPECT_FALSE(a.warm_started);
  EXPECT_NEAR(a.objective, cold.objective, 1e-9);

  Basis bad_columns;
  for (int i = 0; i < m.num_constraints(); ++i)
    bad_columns.entries.push_back(
        {BasisEntry::Kind::kStructural, m.num_variables() + 100 + i});
  const Solution b = solve(m, bad_columns);
  EXPECT_EQ(b.status, SolveStatus::kOptimal);
  EXPECT_FALSE(b.warm_started);
  EXPECT_NEAR(b.objective, cold.objective, 1e-9);

  Basis slack_on_eq;  // row 0 of the generator is an equality: no slack
  for (int i = 0; i < m.num_constraints(); ++i)
    slack_on_eq.entries.push_back({BasisEntry::Kind::kSlack, i});
  const Solution c = solve(m, slack_on_eq);
  EXPECT_EQ(c.status, SolveStatus::kOptimal);
  EXPECT_FALSE(c.warm_started);
  EXPECT_NEAR(c.objective, cold.objective, 1e-9);
}

// An infeasible successor stays infeasible under a warm start (the seed is
// rejected, the cold path detects infeasibility as usual).
TEST(SimplexWarmTest, WarmStartDoesNotMaskInfeasibility) {
  LpModel feasible;
  const int x = feasible.add_variable(1.0);
  const int r0 = feasible.add_constraint(Sense::kLe, 5.0);
  feasible.add_coefficient(r0, x, 1.0);
  const int r1 = feasible.add_constraint(Sense::kGe, 1.0);
  feasible.add_coefficient(r1, x, 1.0);
  const Solution base = solve(feasible);
  ASSERT_EQ(base.status, SolveStatus::kOptimal);

  LpModel infeasible;
  const int x2 = infeasible.add_variable(1.0);
  const int q0 = infeasible.add_constraint(Sense::kLe, 1.0);
  infeasible.add_coefficient(q0, x2, 1.0);
  const int q1 = infeasible.add_constraint(Sense::kGe, 2.0);
  infeasible.add_coefficient(q1, x2, 1.0);
  EXPECT_EQ(solve(infeasible, base.basis).status, SolveStatus::kInfeasible);
}

// Medium-size structured LP resembling the Titan-Next shape: assignment
// variables with equality demand rows and capacity rows plus peak rows.
TEST(SimplexTest, StructuredAssignmentLp) {
  core::Rng rng(99);
  const int configs = 12, dcs = 4, slots = 6;
  LpModel m;
  // x[t][c][d], cost 0; y[d] peak vars with cost 1.
  std::vector<int> y(static_cast<std::size_t>(dcs));
  auto xvar = [&](int t, int c, int d) { return (t * configs + c) * dcs + d; };
  for (int t = 0; t < slots; ++t)
    for (int c = 0; c < configs; ++c)
      for (int d = 0; d < dcs; ++d) m.add_variable(0.0);
  for (int d = 0; d < dcs; ++d) y[static_cast<std::size_t>(d)] = m.add_variable(1.0);

  std::vector<double> demand(static_cast<std::size_t>(slots * configs));
  for (int t = 0; t < slots; ++t)
    for (int c = 0; c < configs; ++c) {
      const double n = rng.uniform(1.0, 20.0);
      demand[static_cast<std::size_t>(t * configs + c)] = n;
      const int r = m.add_constraint(Sense::kEq, n);
      for (int d = 0; d < dcs; ++d) m.add_coefficient(r, xvar(t, c, d), 1.0);
    }
  // Peak rows: y_d >= sum_c x[t][c][d]  for each t.
  for (int t = 0; t < slots; ++t)
    for (int d = 0; d < dcs; ++d) {
      const int r = m.add_constraint(Sense::kLe, 0.0);
      for (int c = 0; c < configs; ++c) m.add_coefficient(r, xvar(t, c, d), 1.0);
      m.add_coefficient(r, y[static_cast<std::size_t>(d)], -1.0);
    }

  const Solution s = solve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_LE(m.max_violation(s.x), 1e-6);

  // The optimum of sum of per-DC peaks with free assignment equals the max
  // over slots of total demand divided optimally across DCs == max_t
  // total_demand(t) (put everything anywhere; peaks sum to per-DC max;
  // balancing equalizes). Lower bound: max_t sum_c demand / 1 spread over
  // dcs -> sum of peaks >= max_t total_t. Verify against that bound.
  double max_total = 0.0;
  for (int t = 0; t < slots; ++t) {
    double tot = 0.0;
    for (int c = 0; c < configs; ++c) tot += demand[static_cast<std::size_t>(t * configs + c)];
    max_total = std::max(max_total, tot);
  }
  EXPECT_GE(s.objective, max_total - 1e-6);
  EXPECT_LE(s.objective, max_total + 1e-6);
}

// --- anti-cycling ----------------------------------------------------------

// A degenerate first pivot (a zero-rhs row binds immediately) must arm the
// bounded Bland burst and still reach the optimum, with both stall and
// Bland pivots surfaced on the Solution.
TEST(SimplexTest, DegenerateStallArmsBoundedBlandBurst) {
  // min -2x - y;  x - y <= 0 (rhs 0: entering x pivots degenerately),
  // x + y <= 2, x <= 1. Optimum x = 1, y = 1, objective -3.
  LpModel m;
  const int x = m.add_variable(-2.0);
  const int y = m.add_variable(-1.0);
  const int r0 = m.add_constraint(Sense::kLe, 0.0);
  m.add_coefficient(r0, x, 1.0);
  m.add_coefficient(r0, y, -1.0);
  const int r1 = m.add_constraint(Sense::kLe, 2.0);
  m.add_coefficient(r1, x, 1.0);
  m.add_coefficient(r1, y, 1.0);
  const int r2 = m.add_constraint(Sense::kLe, 1.0);
  m.add_coefficient(r2, x, 1.0);

  SolveOptions eager;  // Bland after a single degenerate pivot
  eager.bland_trigger = 1;
  eager.bland_burst = 8;
  const Solution s = solve(m, eager);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, -3.0, 1e-7);
  EXPECT_GE(s.stall_pivots, 1);
  EXPECT_GE(s.bland_pivots, 1);

  // At the production trigger the same LP never leaves Dantzig pricing, and
  // the answer is identical.
  const Solution relaxed = solve(m);
  ASSERT_EQ(relaxed.status, SolveStatus::kOptimal);
  EXPECT_NEAR(relaxed.objective, -3.0, 1e-7);
  EXPECT_EQ(relaxed.bland_pivots, 0);
}

// --- dual simplex ----------------------------------------------------------

// Three-row LP whose optimal basis stays dual-feasible when the first rhs
// shrinks: min -x - 2y + z_cost*z, x + y + z <= r0, x <= 2, y <= 3.
LpModel dual_demo_model(double r0, double z_cost) {
  LpModel m;
  const int x = m.add_variable(-1.0);
  const int y = m.add_variable(-2.0);
  const int z = m.add_variable(z_cost);
  const int c0 = m.add_constraint(Sense::kLe, r0);
  m.add_coefficient(c0, x, 1.0);
  m.add_coefficient(c0, y, 1.0);
  m.add_coefficient(c0, z, 1.0);
  const int c1 = m.add_constraint(Sense::kLe, 2.0);
  m.add_coefficient(c1, x, 1.0);
  const int c2 = m.add_constraint(Sense::kLe, 3.0);
  m.add_coefficient(c2, y, 1.0);
  return m;
}

// Shrinking the coupling rhs drives a basic structural negative; the
// re-solve from the stale optimal basis must repair it with dual pivots
// (no phase-1 restoration) and land on the successor's cold optimum.
TEST(SimplexDualTest, RhsDamagedSeedRepairsWithDualPivots) {
  const LpModel before = dual_demo_model(4.0, 5.0);
  const Solution base = solve(before);
  ASSERT_EQ(base.status, SolveStatus::kOptimal);
  EXPECT_NEAR(base.objective, -7.0, 1e-7);  // x = 1, y = 3

  const LpModel after = dual_demo_model(2.5, 5.0);
  const Solution cold = solve(after);
  ASSERT_EQ(cold.status, SolveStatus::kOptimal);
  EXPECT_NEAR(cold.objective, -5.0, 1e-7);  // y = 2.5

  for (const PivotMode mode : {PivotMode::kAuto, PivotMode::kDual}) {
    SolveOptions opt;
    opt.pivot_mode = mode;
    const Solution warm = solve(after, base.basis, opt);
    ASSERT_EQ(warm.status, SolveStatus::kOptimal);
    EXPECT_TRUE(warm.warm_started);
    EXPECT_GE(warm.dual_iterations, 1);
    EXPECT_EQ(warm.phase1_iterations, 0);  // never entered restoration
    EXPECT_NEAR(warm.objective, cold.objective, 1e-7);
    EXPECT_LE(after.max_violation(warm.x), 1e-6);
  }
}

// kPrimal pins the historical behaviour: the same damaged seed repairs
// through the restoration pass, with zero dual pivots.
TEST(SimplexDualTest, PrimalModeNeverTakesDualPivots) {
  const Solution base = solve(dual_demo_model(4.0, 5.0));
  ASSERT_EQ(base.status, SolveStatus::kOptimal);
  const LpModel after = dual_demo_model(2.5, 5.0);
  SolveOptions opt;
  opt.pivot_mode = PivotMode::kPrimal;
  const Solution warm = solve(after, base.basis, opt);
  ASSERT_EQ(warm.status, SolveStatus::kOptimal);
  EXPECT_EQ(warm.dual_iterations, 0);
  EXPECT_NEAR(warm.objective, -5.0, 1e-7);
}

// kDual demands a dual-feasible seed: when the successor's costs make a
// nonbasic column attractive (z turns profitable), the warm attempt fails
// and the solve transparently runs the cold path.
TEST(SimplexDualTest, DualModeWithDualInfeasibleSeedFallsBackCold) {
  const Solution base = solve(dual_demo_model(4.0, 5.0));
  ASSERT_EQ(base.status, SolveStatus::kOptimal);
  const LpModel after = dual_demo_model(2.5, -100.0);
  SolveOptions opt;
  opt.pivot_mode = PivotMode::kDual;
  const Solution warm = solve(after, base.basis, opt);
  ASSERT_EQ(warm.status, SolveStatus::kOptimal);
  EXPECT_FALSE(warm.warm_started);
  EXPECT_EQ(warm.dual_iterations, 0);
  EXPECT_NEAR(warm.objective, solve(after).objective, 1e-7);  // z = 2.5
}

// Optimal solves export the row duals; every structural column must price
// nonnegative against them (the optimality certificate callers rebuild
// candidate masks from).
TEST(SimplexDualTest, OptimalSolveExportsConsistentDuals) {
  core::Rng rng(73);
  const LpModel m = warm_test_model(rng, 8, 6, 1.0);
  const Solution s = solve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  ASSERT_EQ(s.duals.size(), static_cast<std::size_t>(m.num_constraints()));
  const SparseMatrix a = m.matrix();
  for (int j = 0; j < m.num_variables(); ++j)
    EXPECT_GE(m.costs()[static_cast<std::size_t>(j)] - a.dot_column(j, s.duals), -1e-6)
        << "column " << j;
}

// --- structural-rank deficiency & warm-gate edge cases ---------------------

// Duplicate basis columns leave one position unpivotable; the Deficiency
// report names that position and the uncovered row, in matched order.
TEST(BasisLuDeficiencyTest, DuplicateColumnsDiagnosedWithMatchingRows) {
  // Columns: e0, e0 (dependent duplicate), e2, e1 (the repair candidate).
  std::vector<SparseMatrix::Triplet> trips = {
      {0, 0, 1.0}, {0, 1, 1.0}, {2, 2, 1.0}, {1, 3, 1.0}};
  const SparseMatrix a = SparseMatrix::from_triplets(3, 4, trips);

  BasisLu lu;
  std::vector<int> basis = {0, 1, 2};
  EXPECT_FALSE(lu.factorize(a, basis));  // no diagnosis requested: plain abort

  BasisLu::Deficiency def;
  EXPECT_FALSE(lu.factorize(a, basis, 1e-10, &def));
  ASSERT_TRUE(def.any());
  ASSERT_EQ(def.positions.size(), def.rows.size());
  ASSERT_EQ(def.rows.size(), 1u);
  EXPECT_EQ(def.rows[0], 1);  // row 1 has no pivot
  EXPECT_TRUE(def.positions[0] == 0 || def.positions[0] == 1);

  // Swapping the failed position for row 1's unit column repairs the basis.
  basis[static_cast<std::size_t>(def.positions[0])] = 3;
  EXPECT_TRUE(lu.factorize(a, basis));
}

// A seed naming the same structural column twice cannot map onto the model
// at all — the warm attempt is rejected before factorization and the cold
// path answers.
TEST(SimplexWarmTest, DuplicateStructuralSeedFallsBackCold) {
  core::Rng rng(74);
  const LpModel m = warm_test_model(rng, 8, 6, 1.0);
  const Solution cold = solve(m);
  ASSERT_EQ(cold.status, SolveStatus::kOptimal);

  Basis dup;
  dup.entries.assign(static_cast<std::size_t>(m.num_constraints()),
                     {BasisEntry::Kind::kStructural, 0});
  const Solution s = solve(m, dup);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_FALSE(s.warm_started);
  EXPECT_NEAR(s.objective, cold.objective, 1e-9);
}

// An all-artificial seed on a model whose inequality rows own no
// artificials is unmappable (map rejection); on an all-equality model it
// maps but leaves every row hot, exhausting the warm repair budget. Both
// must land on the cold answer with warm_started unset.
TEST(SimplexWarmTest, AllArtificialSeedFallsBackCold) {
  // Mixed rows: the <= rows have slacks, not artificials -> unmappable.
  core::Rng rng(75);
  const LpModel mixed = warm_test_model(rng, 8, 6, 1.0);
  Basis all_art;
  for (int i = 0; i < mixed.num_constraints(); ++i)
    all_art.entries.push_back({BasisEntry::Kind::kArtificial, i});
  const Solution a = solve(mixed, all_art);
  ASSERT_EQ(a.status, SolveStatus::kOptimal);
  EXPECT_FALSE(a.warm_started);
  EXPECT_NEAR(a.objective, solve(mixed).objective, 1e-9);

  // All-equality model: the seed maps and factorizes, but every artificial
  // sits at its (positive) rhs — more hot rows than warm_repair_limit
  // tolerates, and useless to the dual loop — so the solve reruns cold.
  LpModel eq;
  for (int j = 0; j < 3; ++j) eq.add_variable(1.0);
  for (int i = 0; i < 3; ++i) {
    const int r = eq.add_constraint(Sense::kEq, 1.0);
    eq.add_coefficient(r, i, 1.0);
  }
  Basis eq_art;
  for (int i = 0; i < 3; ++i) eq_art.entries.push_back({BasisEntry::Kind::kArtificial, i});
  const Solution b = solve(eq, eq_art);
  ASSERT_EQ(b.status, SolveStatus::kOptimal);
  EXPECT_FALSE(b.warm_started);
  EXPECT_NEAR(b.objective, 3.0, 1e-7);
}

// --- candidate-column pruning ----------------------------------------------

// A warm solve under a candidate mask prices only the kept columns yet must
// reach exactly the unpruned optimum (the verification sweep promotes any
// pruned column that turns attractive).
TEST(SimplexWarmTest, CandidateMaskPreservesOptimality) {
  const std::uint64_t model_seed = 81;
  core::Rng rng_a(model_seed), rng_b(model_seed);
  const LpModel before = warm_test_model(rng_a, 10, 7, 1.0);
  const LpModel after = warm_test_model(rng_b, 10, 7, 1.1);

  const Solution base = solve(before);
  ASSERT_EQ(base.status, SolveStatus::kOptimal);
  const Solution cold = solve(after);
  ASSERT_EQ(cold.status, SolveStatus::kOptimal);

  // Keep only the columns basic in the predecessor; prune the rest.
  SolveOptions opt;
  opt.candidate_mask.assign(static_cast<std::size_t>(after.num_variables()), 0);
  for (const auto& e : base.basis.entries)
    if (e.kind == BasisEntry::Kind::kStructural)
      opt.candidate_mask[static_cast<std::size_t>(e.index)] = 1;

  const Solution warm = solve(after, base.basis, opt);
  ASSERT_EQ(warm.status, SolveStatus::kOptimal);
  EXPECT_GT(warm.pruned_columns, 0);
  EXPECT_NEAR(warm.objective, cold.objective, 1e-6 * (1.0 + std::abs(cold.objective)));
  EXPECT_LE(after.max_violation(warm.x), 1e-6);

  // Cold solves ignore the mask entirely.
  const Solution masked_cold = solve(after, opt);
  ASSERT_EQ(masked_cold.status, SolveStatus::kOptimal);
  EXPECT_EQ(masked_cold.pruned_columns, 0);
}

}  // namespace
}  // namespace titan::lp
