// Tests for the media substrate: RTP accounting, jitter buffer, MOS model,
// and the MP relay simulator.
#include <gtest/gtest.h>

#include "core/stats.h"
#include "media/jitter_buffer.h"
#include "media/media_types.h"
#include "media/mos.h"
#include "media/relay_sim.h"
#include "media/rtp.h"

namespace titan::media {
namespace {

// --- Media types ------------------------------------------------------------

TEST(MediaTypesTest, ResourceOrdering) {
  // audio < screen-share < video in both bandwidth and compute (§6).
  EXPECT_LT(bandwidth_per_participant(MediaType::kAudio),
            bandwidth_per_participant(MediaType::kScreenShare));
  EXPECT_LT(bandwidth_per_participant(MediaType::kScreenShare),
            bandwidth_per_participant(MediaType::kVideo));
  EXPECT_LT(compute_per_participant(MediaType::kAudio),
            compute_per_participant(MediaType::kVideo));
  EXPECT_EQ(dominant(MediaType::kAudio, MediaType::kVideo), MediaType::kVideo);
  EXPECT_EQ(dominant(MediaType::kScreenShare, MediaType::kAudio), MediaType::kScreenShare);
}

// --- RTP ---------------------------------------------------------------------

TEST(RtpTest, LosslessLegDeliversEverything) {
  core::Rng rng(1);
  RtpLegParams leg;
  leg.loss = 0.0;
  leg.duration_s = 10.0;
  const RtpStats stats = simulate_leg(leg, rng);
  EXPECT_EQ(stats.packets_sent, 500u);
  EXPECT_EQ(stats.packets_received, 500u);
  EXPECT_EQ(stats.cumulative_lost, 0u);
  EXPECT_DOUBLE_EQ(stats.loss_fraction, 0.0);
}

TEST(RtpTest, LossFractionTracksConfiguredLoss) {
  core::Rng rng(2);
  RtpLegParams leg;
  leg.loss = 0.05;
  leg.duration_s = 200.0;  // 10k packets for a tight estimate
  const RtpStats stats = simulate_leg(leg, rng);
  EXPECT_NEAR(stats.loss_fraction, 0.05, 0.01);
  // Sequence-gap accounting should roughly agree with send/receive delta.
  EXPECT_NEAR(static_cast<double>(stats.cumulative_lost),
              static_cast<double>(stats.packets_sent - stats.packets_received),
              stats.packets_sent * 0.005 + 5.0);
}

TEST(RtpTest, JitterEstimateScalesWithDelayNoise) {
  core::Rng rng(3);
  RtpLegParams calm, noisy;
  calm.jitter_ms = 1.0;
  noisy.jitter_ms = 10.0;
  calm.duration_s = noisy.duration_s = 60.0;
  const double j_calm = simulate_leg(calm, rng).interarrival_jitter_ms;
  const double j_noisy = simulate_leg(noisy, rng).interarrival_jitter_ms;
  EXPECT_GT(j_noisy, j_calm * 3.0);
}

TEST(RtpTest, MeanDelayNearConfiguredOneWay) {
  core::Rng rng(4);
  RtpLegParams leg;
  leg.one_way_delay_ms = 40.0;
  leg.duration_s = 60.0;
  const RtpStats stats = simulate_leg(leg, rng);
  EXPECT_NEAR(stats.mean_delay_ms, 40.0, 2.0);
}

TEST(RtpTest, CombineLegLoss) {
  EXPECT_DOUBLE_EQ(combine_leg_loss(0.0, 0.0), 0.0);
  EXPECT_NEAR(combine_leg_loss(0.01, 0.01), 0.0199, 1e-4);
  EXPECT_DOUBLE_EQ(combine_leg_loss(1.0, 0.0), 1.0);
}

// --- Jitter buffer ------------------------------------------------------------

TEST(JitterBufferTest, AbsorbsModerateJitter) {
  core::Rng rng(5);
  RtpLegParams leg;
  leg.jitter_ms = 3.5;  // Internet-like jitter (§4.2 finding 3)
  leg.duration_s = 120.0;
  const auto arrivals = simulate_arrivals(leg, rng);
  JitterBuffer buffer;
  const auto stats = buffer.run(arrivals);
  EXPECT_LT(stats.late_rate, 0.02);  // buffer hides it
  EXPECT_GT(stats.mean_playout_delay_ms, 0.0);
}

TEST(JitterBufferTest, HeavyJitterCausesLateDrops) {
  core::Rng rng(6);
  RtpLegParams leg;
  leg.jitter_ms = 60.0;
  leg.duration_s = 120.0;
  const auto arrivals = simulate_arrivals(leg, rng);
  JitterBufferParams params;
  params.max_delay_ms = 80.0;  // cap below what this jitter needs
  JitterBuffer buffer(params);
  const auto stats = buffer.run(arrivals);
  EXPECT_GT(stats.late_rate, 0.02);
}

// Regression for the playout-delay stat: with handcrafted arrivals the
// reported mean must reflect how long packets actually waited (playout -
// arrival), not the configured target. The old accumulation `target +
// (transit - min_delay)` telescoped to exactly `target`, so every stream
// with the same knob settings reported the same delay regardless of
// arrival timing.
TEST(JitterBufferTest, MeanPlayoutDelayTracksArrivalTiming) {
  // Zero-jitter start keeps the EWMA estimate under min_delay_ms / 8, so
  // the target stays pinned at min_delay_ms = 10 for every packet.
  std::vector<RtpArrival> arrivals;
  const double transits[] = {5.0, 5.0, 3.0, 5.0};
  for (std::uint32_t i = 0; i < 4; ++i)
    arrivals.push_back({i, 20.0 * i, 20.0 * i + transits[i]});
  JitterBuffer buffer;
  const auto stats = buffer.run(arrivals);
  ASSERT_EQ(stats.played, 4u);
  // Playout = send + min_transit(3) + target(10); experienced delay per
  // packet = 13 - transit -> {8, 8, 10, 8}, mean 8.5. The buggy stat
  // reported the configured 10.0 here.
  EXPECT_NEAR(stats.mean_playout_delay_ms, 8.5, 1e-9);
}

TEST(JitterBufferTest, EmptyStream) {
  JitterBuffer buffer;
  const auto stats = buffer.run({});
  EXPECT_EQ(stats.played, 0u);
  EXPECT_DOUBLE_EQ(stats.late_rate, 0.0);
}

// --- MOS ----------------------------------------------------------------------

TEST(MosTest, FlatBelowKneeThenLinearDecline) {
  const MosModel mos;
  // Fig. 11: flat under ~75 msec.
  EXPECT_NEAR(mos.expected(50.0), mos.expected(74.0), 1e-9);
  // Roughly linear decline after: ~0.2 MOS between 75 and 250 msec.
  const double drop = mos.expected(75.0) - mos.expected(250.0);
  EXPECT_GT(drop, 0.12);
  EXPECT_LT(drop, 0.35);
  // Monotone non-increasing.
  double prev = 10.0;
  for (double ms = 50.0; ms <= 400.0; ms += 25.0) {
    const double m = mos.expected(ms);
    EXPECT_LE(m, prev + 1e-12);
    prev = m;
  }
}

TEST(MosTest, LossPenaltyOnlyAboveFecThreshold) {
  const MosModel mos;
  EXPECT_NEAR(mos.expected(60.0, 0.004), mos.expected(60.0, 0.0), 1e-9);
  EXPECT_LT(mos.expected(60.0, 0.05), mos.expected(60.0, 0.0) - 0.1);
}

TEST(MosTest, SamplesAreClampedAndNoisy) {
  const MosModel mos;
  core::Rng rng(7);
  core::Accumulator acc;
  for (int i = 0; i < 2000; ++i) {
    const double r = mos.sample(100.0, 0.0, rng);
    EXPECT_GE(r, 1.0);
    EXPECT_LE(r, 5.0);
    acc.add(r);
  }
  // Clamping at 5.0 clips the upper tail, so the sample mean sits slightly
  // below the deterministic curve.
  EXPECT_LE(acc.mean(), mos.expected(100.0) + 0.02);
  EXPECT_NEAR(acc.mean(), mos.expected(100.0), 0.15);
  EXPECT_GT(acc.stddev(), 0.2);
}

// The clamp ranges of expected() and sample() are unified: both floor at
// params.min_mos. (sample() used to clamp to a hard-coded [1, 5], so with a
// raised floor individual ratings could land *below* the deterministic
// curve's own minimum.)
TEST(MosTest, SampleSharesExpectedClampFloor) {
  MosModelParams params;
  params.min_mos = 2.0;
  const MosModel mos(params);
  core::Rng rng(9);
  // Far past the knee with heavy loss: expected() sits on the floor.
  EXPECT_DOUBLE_EQ(mos.expected(2000.0, 0.5), 2.0);
  for (int i = 0; i < 500; ++i) {
    const double r = mos.sample(2000.0, 0.5, rng);
    EXPECT_GE(r, 2.0);
    EXPECT_LE(r, 5.0);
  }
}

// Admission control's media step-downs cost MOS: each degrade step
// subtracts a fixed penalty from the expected rating, saturating at the
// model floor, and sample() applies the same shift.
TEST(MosTest, DegradeStepsLowerExpectedMos) {
  const MosModel mos;
  const double base = mos.expected(60.0);
  EXPECT_NEAR(mos.expected(60.0, 0.0, 1), base - mos.params().degrade_penalty_per_step, 1e-9);
  EXPECT_NEAR(mos.expected(60.0, 0.0, 2), base - 2.0 * mos.params().degrade_penalty_per_step,
              1e-9);
  // Saturates at min_mos, never below.
  EXPECT_DOUBLE_EQ(mos.expected(60.0, 0.0, 1000), mos.params().min_mos);
  // Paired-seed draws share the noise term, so away from the clamp rails
  // the sample difference is exactly the per-step penalty. 475 ms sits
  // mid-curve (expected ~4.37) where one noise draw cannot reach either
  // rail.
  core::Rng a(10), b(10);
  const double undegraded = mos.sample(475.0, 0.0, b, 0);
  ASSERT_LT(undegraded, 5.0);
  ASSERT_GT(undegraded, mos.params().min_mos + mos.params().degrade_penalty_per_step);
  EXPECT_NEAR(mos.sample(475.0, 0.0, a, 1) - undegraded,
              -mos.params().degrade_penalty_per_step, 1e-9);
}

TEST(MosTest, RatingsAreSampled) {
  const MosModel mos;
  core::Rng rng(8);
  int collected = 0;
  for (int i = 0; i < 5000; ++i) collected += mos.collects_rating(rng);
  EXPECT_NEAR(collected / 5000.0, mos.params().sampling_rate, 0.02);
}

// --- Relay simulator ------------------------------------------------------------

class RelayTest : public ::testing::Test {
 protected:
  geo::World world_ = geo::World::make();
  net::NetworkDb db_{world_};
  MosModel mos_;
  RelaySimulator sim_{db_, mos_};
};

TEST_F(RelayTest, CallTelemetryShapes) {
  const auto fr = world_.find_country("france");
  const auto uk = world_.find_country("uk");
  const auto nl = world_.find_dc("netherlands");
  Call call;
  call.id = core::CallId(1);
  call.mp_dc = nl;
  call.media = MediaType::kAudio;
  call.participants = {{core::ParticipantId(1), fr, net::PathType::kWan},
                       {core::ParticipantId(2), uk, net::PathType::kInternet}};
  core::Rng rng(9);
  const CallTelemetry t = sim_.simulate_call(call, 5, nullptr, rng);
  ASSERT_EQ(t.participants.size(), 2u);
  // Max E2E equals the sum of the two one-way legs.
  EXPECT_NEAR(t.max_e2e_ms,
              t.participants[0].rtt_ms / 2 + t.participants[1].rtt_ms / 2, 1e-9);
  for (const auto& p : t.participants) {
    EXPECT_GE(p.rtp_loss, 0.0);
    EXPECT_LT(p.rtp_loss, 0.5);
    EXPECT_GT(p.rtt_ms, 0.0);
    EXPECT_GT(p.jitter_ms, 0.0);
  }
}

TEST_F(RelayTest, SingleParticipantCallHasRoundTripE2e) {
  const auto fr = world_.find_country("france");
  Call call;
  call.id = core::CallId(2);
  call.mp_dc = world_.find_dc("france");
  call.participants = {{core::ParticipantId(1), fr, net::PathType::kWan}};
  core::Rng rng(10);
  const CallTelemetry t = sim_.simulate_call(call, 0, nullptr, rng);
  EXPECT_NEAR(t.max_e2e_ms, t.participants[0].rtt_ms, 1e-9);
}

TEST_F(RelayTest, OfferedLoadInflatesInternetLegs) {
  const auto uk = world_.find_country("uk");
  const auto nl = world_.find_dc("netherlands");
  Call call;
  call.id = core::CallId(3);
  call.mp_dc = nl;
  call.participants = {{core::ParticipantId(1), uk, net::PathType::kInternet}};

  const double cap = db_.physical_internet_capacity(uk, nl);
  core::Rng rng_a(11), rng_b(11);
  const auto calm = sim_.simulate_call(call, 7, nullptr, rng_a);
  const auto overloaded = sim_.simulate_call(
      call, 7, [&](core::CountryId, core::DcId) { return 4.0 * cap; }, rng_b);
  EXPECT_GT(overloaded.participants[0].rtt_ms, calm.participants[0].rtt_ms + 10.0);
  EXPECT_GT(overloaded.participants[0].rtp_loss, calm.participants[0].rtp_loss);
}

TEST_F(RelayTest, MosSampledOnSubsetOfCalls) {
  const auto fr = world_.find_country("france");
  Call call;
  call.id = core::CallId(4);
  call.mp_dc = world_.find_dc("france");
  call.participants = {{core::ParticipantId(1), fr, net::PathType::kWan},
                       {core::ParticipantId(2), fr, net::PathType::kWan}};
  core::Rng rng(12);
  int with_mos = 0;
  for (int i = 0; i < 300; ++i)
    with_mos += sim_.simulate_call(call, 0, nullptr, rng).mos.has_value();
  EXPECT_GT(with_mos, 3);
  EXPECT_LT(with_mos, 100);
}

}  // namespace
}  // namespace titan::media
