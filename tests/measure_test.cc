// Tests for the measurement platform (§3): probe fleet, logging, hourly
// median aggregation, difference buckets, fraction-F heatmaps, granularity
// clustering, and weekly medians.
#include <gtest/gtest.h>

#include "measure/aggregate.h"
#include "measure/probe_platform.h"
#include "net/network_db.h"

namespace titan::measure {
namespace {

class MeasureTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    world_ = new geo::World(geo::World::make());
    geodb_ = new geo::GeoDb(geo::GeoDb::make(*world_));
    db_ = new net::NetworkDb(*world_);
    platform_ = new ProbePlatform(*world_, *geodb_, db_->latency());
    StudyOptions opts;
    opts.days = 2;
    opts.probes_per_hour = 12000;
    corpus_ = new MeasurementCorpus(platform_->run(opts));
  }
  static void TearDownTestSuite() {
    delete corpus_;
    delete platform_;
    delete db_;
    delete geodb_;
    delete world_;
    corpus_ = nullptr;
    platform_ = nullptr;
    db_ = nullptr;
    geodb_ = nullptr;
    world_ = nullptr;
  }

  static geo::World* world_;
  static geo::GeoDb* geodb_;
  static net::NetworkDb* db_;
  static ProbePlatform* platform_;
  static MeasurementCorpus* corpus_;
};

geo::World* MeasureTest::world_ = nullptr;
geo::GeoDb* MeasureTest::geodb_ = nullptr;
net::NetworkDb* MeasureTest::db_ = nullptr;
ProbePlatform* MeasureTest::platform_ = nullptr;
MeasurementCorpus* MeasureTest::corpus_ = nullptr;

TEST_F(MeasureTest, FleetHasTwoVmsPerDc) {
  EXPECT_EQ(platform_->vms().size(), 2 * world_->dcs().size());
  int internet = 0;
  for (const auto& vm : platform_->vms()) internet += vm.path == net::PathType::kInternet;
  EXPECT_EQ(internet, static_cast<int>(world_->dcs().size()));
}

TEST_F(MeasureTest, RoundRobinSpreadsProbesEvenly) {
  std::map<std::pair<int, int>, int> per_vm;
  for (const auto& r : corpus_->records())
    ++per_vm[{r.dc.value(), static_cast<int>(r.path)}];
  ASSERT_EQ(per_vm.size(), platform_->vms().size());
  int min = INT32_MAX, max = 0;
  for (const auto& [vm, n] : per_vm) {
    min = std::min(min, n);
    max = std::max(max, n);
  }
  EXPECT_LE(max - min, 1);  // strict round robin
}

TEST_F(MeasureTest, ScaleStatsMatchTableOneShape) {
  const auto stats = corpus_->scale_stats(2);
  EXPECT_NEAR(stats.avg_measurements_per_day, 12000.0 * 24, 1.0);
  EXPECT_EQ(stats.destination_dcs, 21u);
  EXPECT_GT(stats.source_countries, 30u);
  EXPECT_GT(stats.source_cities, 200u);
  EXPECT_GT(stats.source_asns, 100u);
  EXPECT_GT(stats.ip_subnets, stats.source_cities);
}

TEST_F(MeasureTest, HourlyMediansCoverPairsWithBothArms) {
  const auto table = hourly_medians(*corpus_, Granularity::kCountry, 48);
  EXPECT_GT(table.size(), 100u);
  std::size_t with_diffs = 0;
  for (const auto& [key, series] : table) with_diffs += !pair_differences(series).empty();
  EXPECT_GT(with_diffs, table.size() / 2);
}

TEST_F(MeasureTest, BucketsSumToHundredAndMatchPaperShape) {
  const auto table = hourly_medians(*corpus_, Granularity::kCountry, 48);
  std::vector<double> all;
  for (const auto& [key, series] : table) {
    const auto d = pair_differences(series);
    all.insert(all.end(), d.begin(), d.end());
  }
  const auto b = bucket_differences(all);
  EXPECT_NEAR(b.strictly_better + b.within_10ms + b.within_25ms + b.beyond_25ms, 100.0, 1e-6);
  // Paper: 33.73 / 23.98 / 19.61 / 22.68 — assert loose bands on the shape.
  EXPECT_GT(b.strictly_better, 15.0);
  EXPECT_GT(b.strictly_better + b.within_10ms, 40.0);
  EXPECT_GT(b.beyond_25ms, 5.0);
  EXPECT_LT(b.beyond_25ms, 45.0);
}

TEST_F(MeasureTest, FractionFArithmetic) {
  EXPECT_DOUBLE_EQ(fraction_f({-5.0, 5.0, 20.0}, 10.0), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(fraction_f({}, 10.0), 0.0);
}

TEST_F(MeasureTest, HeatmapHasStructure) {
  const auto table = hourly_medians(*corpus_, Granularity::kCountry, 48);
  const auto cells = fraction_heatmap(table);
  EXPECT_GT(cells.size(), 100u);
  for (const auto& c : cells) {
    EXPECT_GE(c.f, 0.0);
    EXPECT_LE(c.f, 1.0);
  }
}

TEST_F(MeasureTest, GranularityDifferenceSmall) {
  // Fig. 5: clustering by ASN / city changes F by at most ~10-20% relative.
  const auto d = granularity_difference(*corpus_, Granularity::kAsn, 48);
  EXPECT_FALSE(d.all.empty());
  EXPECT_LT(d.p50, 0.25);
  EXPECT_GE(d.p90, d.p50);
}

TEST_F(MeasureTest, WeeklyMediansProduceBothArms) {
  const auto medians = weekly_medians(*corpus_, 48);
  EXPECT_GT(medians.size(), 100u);
  for (const auto& m : medians) {
    EXPECT_GT(m.wan_ms, 0.0);
    EXPECT_GT(m.internet_ms, 0.0);
  }
}

TEST(GranularityNameTest, Names) {
  EXPECT_EQ(granularity_name(Granularity::kCountry), "country");
  EXPECT_EQ(granularity_name(Granularity::kCityAsn), "city+ASN");
}

}  // namespace
}  // namespace titan::measure
