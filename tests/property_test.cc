// Cross-module property tests: parameterized sweeps over invariants that
// must hold for every instance — latency physics per (country, DC) pair,
// loss bounds per path type, RTP accounting per media type, reduction
// algebra per random config, LP plan feasibility per scope, and the
// deterministic smooth-WRR realization of plan weights.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "media/jitter_buffer.h"
#include "media/mos.h"
#include "media/rtp.h"
#include "net/network_db.h"
#include "titannext/plan.h"
#include "titannext/lp_builder.h"
#include "workload/call_config.h"
#include "workload/callgen.h"

namespace titan {
namespace {

struct Fixture {
  geo::World world = geo::World::make();
  net::NetworkDb db{world};
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

// ---- Latency physics, swept over every (country, DC, path, epoch) --------

class LatencyPhysicsTest : public ::testing::TestWithParam<int> {};

TEST_P(LatencyPhysicsTest, EveryPairRespectsBoundsAtEveryEpoch) {
  auto& f = fixture();
  const double epoch = -4.0 * GetParam();  // 0, -4, -8, -12 months
  net::NetworkDbOptions opts;
  opts.latency.epoch_months = epoch;
  const net::NetworkDb db(f.world, opts);
  for (const auto& c : f.world.countries()) {
    for (const auto& d : f.world.dcs()) {
      const double bound = 2.0 * geo::fiber_delay_ms(c.centroid, d.position);
      for (const auto p : {net::PathType::kWan, net::PathType::kInternet}) {
        const double rtt = db.latency().base_rtt_ms(c.id, d.id, p);
        EXPECT_GE(rtt, bound) << c.name << "->" << d.name;
        EXPECT_LT(rtt, bound + 500.0) << c.name << "->" << d.name;  // sane upper bound
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Epochs, LatencyPhysicsTest, ::testing::Range(0, 4));

// ---- Loss bounds per path, swept over days --------------------------------

class LossBoundsTest : public ::testing::TestWithParam<int> {};

TEST_P(LossBoundsTest, LossStaysInValidRangeEveryDay) {
  auto& f = fixture();
  const int day = GetParam();
  for (const auto& c : f.world.countries()) {
    for (const auto d : f.world.dcs_in(geo::Continent::kEurope)) {
      for (int s = 0; s < core::kSlotsPerDay; s += 7) {
        const auto slot = static_cast<core::SlotIndex>(day * core::kSlotsPerDay + s);
        const double wan = f.db.loss().slot_loss(c.id, d, net::PathType::kWan, slot);
        const double inet = f.db.loss().slot_loss(c.id, d, net::PathType::kInternet, slot);
        EXPECT_GE(wan, 0.0);
        EXPECT_LE(wan, 0.0002);  // WAN bounded everywhere (Fig. 7)
        EXPECT_GE(inet, 0.0);
        EXPECT_LE(inet, 0.2);
        EXPECT_GT(f.db.loss().slot_jitter_ms(c.id, d, net::PathType::kWan, slot), 0.0);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Days, LossBoundsTest, ::testing::Range(0, 7));

// ---- RTP accounting per media type and loss level --------------------------

struct RtpCase {
  media::MediaType media;
  double loss;
};

class RtpAccountingTest : public ::testing::TestWithParam<RtpCase> {};

TEST_P(RtpAccountingTest, ReceiverReportsMatchConfiguredLoss) {
  const auto [media_type, loss] = GetParam();
  core::Rng rng(7000 + static_cast<std::uint64_t>(loss * 1e4) +
                static_cast<std::uint64_t>(media_type));
  media::RtpLegParams leg;
  leg.packet_rate_pps = media::packet_rate_pps(media_type);
  leg.duration_s = 40.0;
  leg.loss = loss;
  const auto stats = media::simulate_leg(leg, rng);
  EXPECT_EQ(stats.packets_sent,
            static_cast<std::uint32_t>(leg.packet_rate_pps * leg.duration_s));
  const double tolerance = 3.0 * std::sqrt(loss / stats.packets_sent + 1e-9) + 0.002;
  EXPECT_NEAR(stats.loss_fraction, loss, tolerance);
  EXPECT_LE(stats.cumulative_lost, stats.packets_sent);
  EXPECT_GE(stats.interarrival_jitter_ms, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, RtpAccountingTest,
    ::testing::Values(RtpCase{media::MediaType::kAudio, 0.0},
                      RtpCase{media::MediaType::kAudio, 0.01},
                      RtpCase{media::MediaType::kAudio, 0.05},
                      RtpCase{media::MediaType::kScreenShare, 0.005},
                      RtpCase{media::MediaType::kScreenShare, 0.02},
                      RtpCase{media::MediaType::kVideo, 0.001},
                      RtpCase{media::MediaType::kVideo, 0.03}));

// ---- Jitter buffer late rate is monotone in jitter --------------------------

class JitterSweepTest : public ::testing::TestWithParam<int> {};

TEST_P(JitterSweepTest, LateRateBoundedAndDelayGrowsWithJitter) {
  core::Rng rng(8100 + static_cast<std::uint64_t>(GetParam()));
  const double jitter = 1.0 + 2.0 * GetParam();
  media::RtpLegParams leg;
  leg.jitter_ms = jitter;
  leg.duration_s = 60.0;
  const auto arrivals = media::simulate_arrivals(leg, rng);
  media::JitterBuffer buffer;
  const auto stats = buffer.run(arrivals);
  EXPECT_LE(stats.late_rate, 0.10) << "jitter=" << jitter;
  EXPECT_GE(stats.mean_playout_delay_ms, 0.0);
  // More jitter needs more buffering.
  if (GetParam() >= 2) {
    core::Rng rng2(8100);
    media::RtpLegParams calm = leg;
    calm.jitter_ms = 1.0;
    const auto calm_stats = buffer.run(media::simulate_arrivals(calm, rng2));
    EXPECT_GE(stats.mean_playout_delay_ms, calm_stats.mean_playout_delay_ms);
  }
}

INSTANTIATE_TEST_SUITE_P(JitterLevels, JitterSweepTest, ::testing::Range(0, 6));

// ---- MOS monotonicity over latency and loss grids ----------------------------

class MosGridTest : public ::testing::TestWithParam<int> {};

TEST_P(MosGridTest, MonotoneInBothArguments) {
  const media::MosModel mos;
  const double base_ms = 40.0 + 30.0 * GetParam();
  const double step_ms = 25.0;
  for (double loss : {0.0, 0.01, 0.05}) {
    EXPECT_GE(mos.expected(base_ms, loss), mos.expected(base_ms + step_ms, loss) - 1e-12);
    EXPECT_GE(mos.expected(base_ms, loss), mos.expected(base_ms, loss + 0.01) - 1e-12);
    EXPECT_GE(mos.expected(base_ms, loss), 1.0);
    EXPECT_LE(mos.expected(base_ms, loss), 5.0);
  }
}

INSTANTIATE_TEST_SUITE_P(LatencyGrid, MosGridTest, ::testing::Range(0, 8));

// ---- Reduction algebra on random configs -------------------------------------

class ReductionPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(ReductionPropertyTest, ReductionIsIdempotentAndPreservesResources) {
  auto& f = fixture();
  core::Rng rng(9000 + static_cast<std::uint64_t>(GetParam()));
  const auto eu = f.world.countries_in(geo::Continent::kEurope);

  workload::CallConfig config;
  const int n_countries = 1 + static_cast<int>(rng.uniform_int(0, 2));
  for (int i = 0; i < n_countries; ++i) {
    const auto c = eu[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(eu.size()) - 1))];
    config.participants.push_back({c, 1 + static_cast<int>(rng.uniform_int(0, 5))});
  }
  config.media = static_cast<media::MediaType>(rng.uniform_int(0, 2));
  config.canonicalize();

  const auto reduced = workload::reduce(config);
  // Resources preserved: multiplier x reduced == original.
  EXPECT_NEAR(reduced.multiplier * reduced.config.network_mbps(), config.network_mbps(),
              1e-9);
  EXPECT_NEAR(reduced.multiplier * reduced.config.compute_cores(), config.compute_cores(),
              1e-9);
  // Media type preserved; country set preserved.
  EXPECT_EQ(reduced.config.media, config.media);
  EXPECT_EQ(reduced.config.participants.size(), config.participants.size());
  // Idempotent: reducing a reduced config is the identity.
  const auto twice = workload::reduce(reduced.config);
  EXPECT_EQ(twice.config, reduced.config);
  EXPECT_EQ(twice.multiplier, 1);
  // Intra-country reduces all the way to one participant.
  if (reduced.config.intra_country())
    EXPECT_EQ(reduced.config.participants.front().second, 1);
}

INSTANTIATE_TEST_SUITE_P(RandomConfigs, ReductionPropertyTest, ::testing::Range(0, 30));

// ---- Smooth-WRR plan realization matches the fractional weights --------------

TEST(PlanRealizationTest, SmoothWrrTracksPlanShares) {
  auto& f = fixture();
  workload::TraceOptions topts;
  topts.weeks = 2;
  topts.peak_slot_calls = 60.0;
  const auto trace = workload::TraceGenerator(f.world).generate(topts);

  std::map<std::pair<int, int>, double> fractions;
  for (const auto c : f.world.countries_in(geo::Continent::kEurope))
    for (const auto d : f.world.dcs_in(geo::Continent::kEurope))
      fractions[{c.value(), d.value()}] = f.db.loss().internet_unusable(c) ? 0.0 : 0.20;

  titannext::PlanScope scope;
  scope.timeslots = 12;
  scope.max_reduced_configs = 20;
  titannext::PlanInputs inputs(f.db, scope, fractions);
  inputs.set_demand(trace.configs(), trace.config_counts(), true);
  titannext::LpBuildOptions lp;
  lp.e2e_bound_ms = 120.0;
  titannext::OfflinePlan plan(&inputs, titannext::solve_plan(inputs, lp));
  ASSERT_TRUE(plan.valid());

  // Pick a demand with volume; draw many times at one slot and compare the
  // realized split against the plan weights.
  const auto& demands = inputs.demands();
  int c = -1;
  for (std::size_t i = 0; i < demands.size(); ++i)
    if (demands[i].units_per_slot[9] >= 2.0) {
      c = static_cast<int>(i);
      break;
    }
  ASSERT_GE(c, 0);

  core::Rng rng(11);
  std::map<std::pair<int, int>, int> realized;
  const int draws = 600;
  for (int i = 0; i < draws; ++i) {
    const auto a = plan.pick(demands[static_cast<std::size_t>(c)].config, 9, rng);
    ASSERT_TRUE(a.has_value());
    ++realized[{a->dc.value(), static_cast<int>(a->path)}];
  }

  // Expected shares from the plan.
  double total = 0.0;
  std::map<std::pair<int, int>, double> expected;
  for (const auto& e :
       plan.result().weights[9][static_cast<std::size_t>(c)].entries) {
    expected[{e.dc.value(), static_cast<int>(e.path)}] += e.units;
    total += e.units;
  }
  for (const auto& [key, units] : expected) {
    const double want = units / total;
    const double got = realized[key] / static_cast<double>(draws);
    EXPECT_NEAR(got, want, 0.02) << "dc=" << key.first << " path=" << key.second;
  }
}

// ---- LP plan feasibility swept over scopes ------------------------------------

class PlanScopeSweepTest : public ::testing::TestWithParam<int> {};

TEST_P(PlanScopeSweepTest, PlanIsOptimalAndAssignsEverything) {
  auto& f = fixture();
  workload::TraceOptions topts;
  topts.weeks = 2;
  topts.peak_slot_calls = 40.0;
  topts.seed = 500 + static_cast<std::uint64_t>(GetParam());
  const auto trace = workload::TraceGenerator(f.world).generate(topts);

  std::map<std::pair<int, int>, double> fractions;
  for (const auto c : f.world.countries_in(geo::Continent::kEurope))
    for (const auto d : f.world.dcs_in(geo::Continent::kEurope))
      fractions[{c.value(), d.value()}] = f.db.loss().internet_unusable(c) ? 0.0 : 0.20;

  titannext::PlanScope scope;
  scope.timeslots = 8 + 4 * (GetParam() % 3);
  scope.max_reduced_configs = 10 + 5 * (GetParam() % 4);
  scope.compute_headroom = 1.5 + 0.5 * (GetParam() % 2);
  titannext::PlanInputs inputs(f.db, scope, fractions);
  inputs.set_demand(trace.configs(), trace.config_counts(), GetParam() % 2 == 0);

  titannext::LpBuildOptions lp;
  lp.e2e_bound_ms = 150.0;
  const auto result = titannext::solve_plan(inputs, lp);
  ASSERT_EQ(result.status, lp::SolveStatus::kOptimal) << "seed " << GetParam();

  // C1 holds in every slot for every demand.
  for (int t = 0; t < scope.timeslots; ++t)
    for (std::size_t c = 0; c < inputs.demands().size(); ++c) {
      double assigned = 0.0;
      for (const auto& e : result.weights[static_cast<std::size_t>(t)][c].entries)
        assigned += e.units;
      EXPECT_NEAR(assigned, inputs.demands()[c].units_per_slot[static_cast<std::size_t>(t)],
                  1e-5);
    }
}

INSTANTIATE_TEST_SUITE_P(Scopes, PlanScopeSweepTest, ::testing::Range(0, 6));

// ---- Elasticity monotonicity over offered load ---------------------------------

class ElasticityMonotoneTest : public ::testing::TestWithParam<int> {};

TEST_P(ElasticityMonotoneTest, LossAndRttNondecreasingInLoad) {
  auto& f = fixture();
  const auto eu = f.world.countries_in(geo::Continent::kEurope);
  const auto c = eu[static_cast<std::size_t>(GetParam()) % eu.size()];
  const auto d = f.world.dcs_in(geo::Continent::kEurope)
                     [static_cast<std::size_t>(GetParam()) %
                      f.world.dcs_in(geo::Continent::kEurope).size()];
  const double demand = f.db.pair_peak_demand(c, d);
  double prev_loss = -1.0, prev_rtt = -1.0;
  for (double frac = 0.0; frac <= 1.2; frac += 0.1) {
    const double loss = f.db.effective_internet_loss(c, d, 20, frac * demand);
    const double rtt = f.db.effective_internet_rtt(c, d, 20, frac * demand);
    EXPECT_GE(loss, prev_loss - 1e-12);
    EXPECT_GE(rtt, prev_rtt - 1e-12);
    prev_loss = loss;
    prev_rtt = rtt;
  }
}

INSTANTIATE_TEST_SUITE_P(Pairs, ElasticityMonotoneTest, ::testing::Range(0, 10));

}  // namespace
}  // namespace titan
