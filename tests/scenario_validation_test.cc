// Negative-path tests for scenario validation: one table-driven case per
// rejection the engine (and the scenario library) can produce, asserting
// on the *specific* error text — a regression that swaps two validations,
// or silently accepts a malformed scenario, fails here even if something
// still throws. Plus the positive boundary: touching windows are legal
// because restores order before same-slot disturbances.
#include <gtest/gtest.h>

#include <functional>
#include <string>
#include <vector>

#include "sim/engine.h"

namespace titan::sim {
namespace {

Scenario tiny() {
  Scenario s = make_scenario("steady-week");
  s.training_weeks = 1;
  s.eval_days = 1;
  s.peak_slot_calls = 20.0;
  s.shards = 4;
  s.oracle_counts = true;
  s.replan_interval_slots = 24;
  s.pipeline.scope.timeslots = 24;
  s.pipeline.scope.max_reduced_configs = 20;
  return s;
}

Disturbance make(NetworkEventKind kind, std::string country, std::string dc,
                 double magnitude = 0.0, int slot_in_day = 10, int duration = -1) {
  Disturbance d;
  d.kind = kind;
  d.slot_in_day = slot_in_day;
  d.duration_slots = duration;
  d.country = std::move(country);
  d.dc = std::move(dc);
  d.magnitude = magnitude;
  return d;
}

struct RejectionCase {
  const char* label;
  std::function<void()> build;  // constructs the invalid thing
  const char* expected_error;   // must appear in the exception text
};

TEST(ScenarioValidationTest, EveryRejectionNamesTheProblem) {
  const std::vector<RejectionCase> cases = {
      {"unknown scenario name",
       [] { (void)make_scenario("no-such-scenario"); },
       "unknown scenario: no-such-scenario"},

      {"unknown disturbance country",
       [] {
         Scenario s = tiny();
         s.disturbances = {make(NetworkEventKind::kFiberCut, "atlantis", "netherlands")};
         SimEngine engine(s);
       },
       "disturbance country: atlantis"},

      {"unknown disturbance dc",
       [] {
         Scenario s = tiny();
         s.disturbances = {make(NetworkEventKind::kFiberCut, "france", "mordor")};
         SimEngine engine(s);
       },
       "disturbance dc: mordor"},

      {"dc drain without a target dc",
       [] {
         Scenario s = tiny();
         s.disturbances = {make(NetworkEventKind::kDcDrain, "", "", 0.5)};
         SimEngine engine(s);
       },
       "dc drain requires a dc"},

      {"dc drain magnitude out of range",
       [] {
         Scenario s = tiny();
         s.disturbances = {make(NetworkEventKind::kDcDrain, "", "netherlands", 1.5)};
         SimEngine engine(s);
       },
       "dc drain magnitude must be in [0, 1)"},

      {"transit degrade without a target dc",
       [] {
         Scenario s = tiny();
         s.disturbances = {make(NetworkEventKind::kTransitDegrade, "france", "", 0.03)};
         SimEngine engine(s);
       },
       "transit degrade requires a dc"},

      {"transit degrade that adds no loss",
       [] {
         Scenario s = tiny();
         s.disturbances = {make(NetworkEventKind::kTransitDegrade, "", "netherlands", 0.0)};
         SimEngine engine(s);
       },
       "transit degrade magnitude must be > 0"},

      {"fiber cut without link targets",
       [] {
         Scenario s = tiny();
         s.disturbances = {make(NetworkEventKind::kFiberCut, "", "")};
         SimEngine engine(s);
       },
       "link disturbances require a country and a dc"},

      {"link scale with only a country",
       [] {
         Scenario s = tiny();
         s.disturbances = {make(NetworkEventKind::kLinkScale, "france", "", 0.5)};
         SimEngine engine(s);
       },
       "link disturbances require a country and a dc"},

      {"fiber cut with a repair window",
       [] {
         Scenario s = tiny();
         s.disturbances = {
             make(NetworkEventKind::kFiberCut, "france", "netherlands", 0.0, 10, 8)};
         SimEngine engine(s);
       },
       "link disturbances do not support duration_slots"},

      {"overlapping drain windows on one dc",
       [] {
         Scenario s = tiny();
         s.disturbances = {
             make(NetworkEventKind::kDcDrain, "", "netherlands", 0.5, 10, 10),
             make(NetworkEventKind::kDcDrain, "", "netherlands", 0.5, 15, 10)};
         SimEngine engine(s);
       },
       "overlapping dc drain windows on one target"},

      {"windowed drain inside an open-ended drain",
       [] {
         Scenario s = tiny();
         s.disturbances = {
             make(NetworkEventKind::kDcDrain, "", "netherlands", 0.0, 10, -1),
             make(NetworkEventKind::kDcDrain, "", "netherlands", 0.5, 20, 5)};
         SimEngine engine(s);
       },
       "overlapping dc drain windows on one target"},

      {"overlapping degrade windows on one transit",
       [] {
         Scenario s = tiny();
         s.disturbances = {
             make(NetworkEventKind::kTransitDegrade, "france", "netherlands", 0.03, 10, 10),
             make(NetworkEventKind::kTransitDegrade, "france", "netherlands", 0.03, 15, 10)};
         SimEngine engine(s);
       },
       "overlapping transit degrade windows on one target"},

      {"surge with an unknown country",
       [] {
         Scenario s = tiny();
         SurgeSpec surge;
         surge.day = 0;
         surge.country = "atlantis";
         s.surges.push_back(surge);
         (void)build_workload(s, geo::World::make());
       },
       "surge country: atlantis"},

      {"rolling maintenance with a non-positive window",
       [] {
         Scenario s = tiny();
         add_rolling_maintenance(s, {"netherlands"}, 0, 10, /*window_slots=*/0,
                                 /*gap_slots=*/2, 0.5);
       },
       "rolling maintenance window_slots"},

      {"rolling maintenance with a negative gap",
       [] {
         Scenario s = tiny();
         add_rolling_maintenance(s, {"netherlands"}, 0, 10, /*window_slots=*/4,
                                 /*gap_slots=*/-1, 0.5);
       },
       "rolling maintenance gap_slots"},

      {"empty region set",
       [] {
         Scenario s = tiny();
         s.pipeline.scope.regions = geo::RegionSet();
         SimEngine engine(s);
       },
       "plan scope: empty region set"},

      {"duplicate continent in the region set",
       [] {
         Scenario s = tiny();
         s.pipeline.scope.regions = {geo::Continent::kEurope, geo::Continent::kAsia,
                                     geo::Continent::kEurope};
         SimEngine engine(s);
       },
       "plan scope: duplicate continent in region set: Europe"},

      {"cross_region_fraction above 1",
       [] {
         Scenario s = tiny();
         s.pipeline.scope.regions = {geo::Continent::kEurope, geo::Continent::kAsia};
         s.cross_region_fraction = 1.5;
         SimEngine engine(s);
       },
       "cross_region_fraction must be in [0, 1]"},

      {"negative cross_region_fraction",
       [] {
         Scenario s = tiny();
         s.cross_region_fraction = -0.1;
         SimEngine engine(s);
       },
       "cross_region_fraction must be in [0, 1]"},

      {"disturbance dc outside the plan scope",
       [] {
         Scenario s = tiny();  // Europe scope; Hong Kong is an Asian DC
         s.disturbances = {make(NetworkEventKind::kDcDrain, "", "hongkong", 0.5)};
         SimEngine engine(s);
       },
       "disturbance dc outside plan scope: hongkong"},

      {"disturbance country outside the plan scope",
       [] {
         Scenario s = tiny();
         s.disturbances = {make(NetworkEventKind::kFiberCut, "us", "netherlands")};
         SimEngine engine(s);
       },
       "disturbance country outside plan scope: us"},

      {"surge country outside the plan scope",
       [] {
         Scenario s = tiny();
         SurgeSpec surge;
         surge.day = 0;
         surge.country = "japan";
         s.surges.push_back(surge);
         (void)build_workload(s, geo::World::make());
       },
       "surge country outside plan scope: japan"},

      {"overload factor implausibly large",
       [] {
         Scenario s = tiny();
         s.overload_factor = 51.0;
         (void)build_workload(s, geo::World::make());
       },
       "overload_factor implausibly large"},

      {"overload window past the eval window",
       [] {
         Scenario s = tiny();  // eval_days = 1
         s.overload_factor = 2.0;
         s.overload_begin_day = 0;
         s.overload_end_day = 3;
         (void)build_workload(s, geo::World::make());
       },
       "overload window outside the eval window"},

      {"overload window that begins after it ends",
       [] {
         Scenario s = tiny();
         s.overload_factor = 2.0;
         s.overload_begin_day = 1;
         s.overload_end_day = 1;
         (void)build_workload(s, geo::World::make());
       },
       "overload window outside the eval window"},
  };

  for (const auto& c : cases) {
    SCOPED_TRACE(c.label);
    try {
      c.build();
      ADD_FAILURE() << "expected std::invalid_argument, got no exception";
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find(c.expected_error), std::string::npos)
          << "actual error: " << e.what();
    } catch (const std::exception& e) {
      ADD_FAILURE() << "expected std::invalid_argument, got: " << e.what();
    }
  }
}

// The positive boundary of the overlap rule: windows that *touch* ([10,16)
// then [16,22) on one DC) are legal in either listing order, because the
// engine orders the first window's restore before the second window's
// drain at their shared slot. Both orders must also simulate identically.
TEST(ScenarioValidationTest, TouchingWindowsAreLegalBecauseRestoresOrderFirst) {
  const auto drain_at = [](int slot_in_day, int duration) {
    return make(NetworkEventKind::kDcDrain, "", "netherlands", 0.5, slot_in_day, duration);
  };
  Scenario forward = tiny();
  forward.disturbances = {drain_at(10, 6), drain_at(16, 6)};
  Scenario reversed = tiny();
  reversed.disturbances = {drain_at(16, 6), drain_at(10, 6)};

  SimEngine forward_engine(forward);
  SimEngine reversed_engine(reversed);
  const auto a = forward_engine.run(2);
  const auto b = reversed_engine.run(2);
  EXPECT_EQ(a.leaked_calls, 0);
  EXPECT_EQ(a.checksum, b.checksum) << "listing order changed the simulation";
}

}  // namespace
}  // namespace titan::sim
