// Tests for the shared bench CLI (bench/common.h): flag parsing, the
// scenario-aware validation (--scenario/--scenarios against a library,
// unknown names exit 2 with the valid list), and --list-scenarios. The
// benches call the exiting wrapper parse_cli(); these tests drive the
// non-exiting core parse_cli_args() it is built on.
#include <gtest/gtest.h>

#include "bench/common.h"
#include "sim/scenario.h"

namespace titan::bench {
namespace {

// argv helper: parse_cli_args wants a mutable char** like main() gets.
CliParse parse(std::vector<std::string> args,
               const std::vector<std::string>& scenarios = {}) {
  args.insert(args.begin(), "bench_test");
  std::vector<char*> argv;
  argv.reserve(args.size());
  for (auto& a : args) argv.push_back(a.data());
  return parse_cli_args(static_cast<int>(argv.size()), argv.data(), scenarios);
}

TEST(BenchCliTest, ParsesSharedAndSweepFlags) {
  const CliParse p = parse({"--seed", "7", "--weeks", "3", "--threads", "4", "--peak",
                            "250", "--seeds", "5", "--scenarios", "steady-week,dc-drain",
                            "--sim-threads", "1,2,8", "--workers", "6", "--baseline",
                            "base.json", "--check", "--out", "sweep.json"},
                           sim::scenario_names());
  ASSERT_LT(p.exit_code, 0) << p.message;
  EXPECT_EQ(p.cli.seed, 7u);
  EXPECT_EQ(p.cli.weeks, 3);
  EXPECT_EQ(p.cli.training_weeks(), 2);
  EXPECT_EQ(p.cli.threads, 4);
  EXPECT_DOUBLE_EQ(p.cli.peak_slot_calls, 250.0);
  EXPECT_EQ(p.cli.seeds, 5);
  EXPECT_EQ(p.cli.scenarios, "steady-week,dc-drain");
  EXPECT_EQ(p.cli.sim_threads, "1,2,8");
  EXPECT_EQ(p.cli.workers, 6);
  EXPECT_EQ(p.cli.baseline_path, "base.json");
  EXPECT_TRUE(p.cli.check);
  EXPECT_EQ(p.cli.out_path, "sweep.json");
}

TEST(BenchCliTest, ParsesReplanJsonPath) {
  const CliParse p = parse({"--replan-json", "replan.json"}, sim::scenario_names());
  ASSERT_LT(p.exit_code, 0) << p.message;
  EXPECT_EQ(p.cli.replan_json_path, "replan.json");
  EXPECT_TRUE(p.cli.json_path.empty());
}

TEST(BenchCliTest, ParsesObservabilityPaths) {
  const CliParse p = parse({"--perf-json", "perf.json", "--perf-baseline", "base_perf.json",
                            "--trace-out", "trace.json"},
                           sim::scenario_names());
  ASSERT_LT(p.exit_code, 0) << p.message;
  EXPECT_EQ(p.cli.perf_json_path, "perf.json");
  EXPECT_EQ(p.cli.perf_baseline_path, "base_perf.json");
  EXPECT_EQ(p.cli.trace_out_path, "trace.json");
  // Off by default: the hot paths must not pay for tracing unasked.
  const CliParse bare = parse({}, sim::scenario_names());
  EXPECT_TRUE(bare.cli.perf_json_path.empty());
  EXPECT_TRUE(bare.cli.perf_baseline_path.empty());
  EXPECT_TRUE(bare.cli.trace_out_path.empty());
}

TEST(BenchCliTest, ObservabilityFlagsMissingValuesExitTwo) {
  EXPECT_EQ(parse({"--perf-json"}).exit_code, 2);
  EXPECT_EQ(parse({"--perf-baseline"}).exit_code, 2);
  EXPECT_EQ(parse({"--trace-out"}).exit_code, 2);
  // The help text advertises every new flag.
  const CliParse help = parse({"--help"});
  ASSERT_EQ(help.exit_code, 0);
  EXPECT_NE(help.message.find("--perf-json"), std::string::npos) << help.message;
  EXPECT_NE(help.message.find("--perf-baseline"), std::string::npos) << help.message;
  EXPECT_NE(help.message.find("--trace-out"), std::string::npos) << help.message;
}

TEST(BenchCliTest, ParsesLpModeAndRejectsUnknownValues) {
  // Default is the solver-picks-everything mode.
  EXPECT_EQ(parse({}).cli.lp_mode, "auto");
  for (const std::string mode : {"auto", "primal", "dual", "decomposed"}) {
    const CliParse p = parse({"--lp-mode", mode});
    ASSERT_LT(p.exit_code, 0) << mode << ": " << p.message;
    EXPECT_EQ(p.cli.lp_mode, mode);
  }
  const CliParse bad = parse({"--lp-mode", "revised"});
  EXPECT_EQ(bad.exit_code, 2);
  EXPECT_NE(bad.message.find("--lp-mode"), std::string::npos) << bad.message;
  EXPECT_EQ(parse({"--lp-mode"}).exit_code, 2);  // missing value
  const CliParse help = parse({"--help"});
  ASSERT_EQ(help.exit_code, 0);
  EXPECT_NE(help.message.find("--lp-mode"), std::string::npos) << help.message;
}

TEST(BenchCliTest, ParsesOpenLoopHarnessFlags) {
  const CliParse p = parse({"--rate", "25000", "--warmup-sec", "1.5", "--measure-sec", "4",
                            "--cooldown-sec", "0.5"});
  ASSERT_LT(p.exit_code, 0) << p.message;
  EXPECT_DOUBLE_EQ(p.cli.rate_per_sec, 25000.0);
  EXPECT_DOUBLE_EQ(p.cli.warmup_sec, 1.5);
  EXPECT_DOUBLE_EQ(p.cli.measure_sec, 4.0);
  EXPECT_DOUBLE_EQ(p.cli.cooldown_sec, 0.5);
  // Zero-length warmup/cooldown are legal (measure everything)...
  EXPECT_LT(parse({"--warmup-sec", "0", "--cooldown-sec", "0"}).exit_code, 0);
  // ...but a non-positive rate or measure window is a usage error, and so
  // is a missing value.
  EXPECT_EQ(parse({"--rate", "0"}).exit_code, 2);
  EXPECT_EQ(parse({"--rate", "-5"}).exit_code, 2);
  EXPECT_EQ(parse({"--measure-sec", "0"}).exit_code, 2);
  EXPECT_EQ(parse({"--warmup-sec", "-1"}).exit_code, 2);
  EXPECT_EQ(parse({"--cooldown-sec", "-1"}).exit_code, 2);
  EXPECT_EQ(parse({"--rate"}).exit_code, 2);
  EXPECT_EQ(parse({"--warmup-sec"}).exit_code, 2);
  EXPECT_EQ(parse({"--measure-sec"}).exit_code, 2);
  EXPECT_EQ(parse({"--cooldown-sec"}).exit_code, 2);
  // The help text advertises the harness flags.
  const CliParse help = parse({"--help"});
  ASSERT_EQ(help.exit_code, 0);
  EXPECT_NE(help.message.find("--rate"), std::string::npos) << help.message;
  EXPECT_NE(help.message.find("--warmup-sec"), std::string::npos) << help.message;
  EXPECT_NE(help.message.find("--measure-sec"), std::string::npos) << help.message;
  EXPECT_NE(help.message.find("--cooldown-sec"), std::string::npos) << help.message;
}

TEST(BenchCliTest, ParsesDistributedSweepFlags) {
  const CliParse p =
      parse({"--workers-proc", "4", "--worker-timeout-sec", "30.5"}, sim::scenario_names());
  ASSERT_LT(p.exit_code, 0) << p.message;
  EXPECT_EQ(p.cli.workers_proc, 4);
  EXPECT_DOUBLE_EQ(p.cli.worker_timeout_sec, 30.5);
  EXPECT_FALSE(p.cli.worker);

  // Defaults: in-process sweep, no worker mode, 10-minute task deadline.
  const CliParse bare = parse({}, sim::scenario_names());
  EXPECT_EQ(bare.cli.workers_proc, 0);
  EXPECT_FALSE(bare.cli.worker);
  EXPECT_TRUE(bare.cli.worker_fault.empty());
  EXPECT_DOUBLE_EQ(bare.cli.worker_timeout_sec, 600.0);

  const CliParse worker = parse({"--worker"}, sim::scenario_names());
  ASSERT_LT(worker.exit_code, 0) << worker.message;
  EXPECT_TRUE(worker.cli.worker);
}

TEST(BenchCliTest, DistributedSweepFlagUsageErrorsExitTwo) {
  EXPECT_EQ(parse({"--workers-proc"}).exit_code, 2);       // missing value
  EXPECT_EQ(parse({"--workers-proc", "0"}).exit_code, 2);  // needs >= 1 process
  EXPECT_EQ(parse({"--workers-proc", "-2"}).exit_code, 2);
  EXPECT_EQ(parse({"--worker-timeout-sec"}).exit_code, 2);
  EXPECT_EQ(parse({"--worker-timeout-sec", "0"}).exit_code, 2);
  EXPECT_EQ(parse({"--worker-timeout-sec", "-1"}).exit_code, 2);
  // A worker never dispatches: the two modes cannot be combined, in either
  // argument order.
  const CliParse both = parse({"--worker", "--workers-proc", "2"});
  EXPECT_EQ(both.exit_code, 2);
  EXPECT_NE(both.message.find("mutually exclusive"), std::string::npos) << both.message;
  EXPECT_EQ(parse({"--workers-proc", "2", "--worker"}).exit_code, 2);
  // The help text advertises the distributed-mode flags.
  const CliParse help = parse({"--help"});
  ASSERT_EQ(help.exit_code, 0);
  EXPECT_NE(help.message.find("--workers-proc"), std::string::npos) << help.message;
  EXPECT_NE(help.message.find("--worker-timeout-sec"), std::string::npos) << help.message;
  EXPECT_NE(help.message.find("--worker"), std::string::npos) << help.message;
  EXPECT_NE(help.message.find("--worker-fault"), std::string::npos) << help.message;
}

TEST(BenchCliTest, WorkerFaultInjectionFlagValidatesItsGrammar) {
  for (const std::string mode : {"die", "hang", "truncate", "corrupt", "bad-version"}) {
    const CliParse p = parse({"--worker", "--worker-fault", mode});
    ASSERT_LT(p.exit_code, 0) << mode << ": " << p.message;
    EXPECT_EQ(p.cli.worker_fault, mode);
    const CliParse with_count = parse({"--worker", "--worker-fault", mode + ":3"});
    ASSERT_LT(with_count.exit_code, 0) << with_count.message;
    EXPECT_EQ(with_count.cli.worker_fault, mode + ":3");
  }
  EXPECT_EQ(parse({"--worker", "--worker-fault"}).exit_code, 2);  // missing value
  EXPECT_EQ(parse({"--worker", "--worker-fault", "explode"}).exit_code, 2);
  EXPECT_EQ(parse({"--worker", "--worker-fault", "die:"}).exit_code, 2);
  EXPECT_EQ(parse({"--worker", "--worker-fault", "die:x"}).exit_code, 2);
  EXPECT_EQ(parse({"--worker", "--worker-fault", "die:1x"}).exit_code, 2);
  // Fault injection only exists inside a worker.
  const CliParse no_worker = parse({"--worker-fault", "die"});
  EXPECT_EQ(no_worker.exit_code, 2);
  EXPECT_NE(no_worker.message.find("requires --worker"), std::string::npos)
      << no_worker.message;
}

TEST(BenchCliTest, UnknownScenarioExitsTwoWithTheValidList) {
  const CliParse p = parse({"--scenario", "no-such"}, sim::scenario_names());
  EXPECT_EQ(p.exit_code, 2);
  EXPECT_NE(p.message.find("unknown scenario 'no-such'"), std::string::npos) << p.message;
  // The error names every valid scenario plus the "all" shorthand.
  for (const auto& name : sim::scenario_names())
    EXPECT_NE(p.message.find(name), std::string::npos) << p.message;
  EXPECT_NE(p.message.find("all"), std::string::npos) << p.message;
}

TEST(BenchCliTest, ScenarioAcceptsACommaList) {
  // The singular flag takes a comma list too (the CI overload-smoke step
  // uses it), with the same per-name validation and "all" exclusivity as
  // --scenarios.
  const CliParse p = parse({"--scenario", "overload-sustained,cascading-drain"},
                           sim::scenario_names());
  EXPECT_LT(p.exit_code, 0) << p.message;
  EXPECT_EQ(p.cli.scenario, "overload-sustained,cascading-drain");
  const CliParse bad =
      parse({"--scenario", "overload-sustained,bogus"}, sim::scenario_names());
  EXPECT_EQ(bad.exit_code, 2);
  EXPECT_NE(bad.message.find("unknown scenario 'bogus'"), std::string::npos) << bad.message;
  const CliParse mixed =
      parse({"--scenario", "steady-week,all"}, sim::scenario_names());
  EXPECT_EQ(mixed.exit_code, 2);
  EXPECT_NE(mixed.message.find("'all' cannot be combined"), std::string::npos)
      << mixed.message;
}

TEST(BenchCliTest, UnknownNameInScenariosListAlsoExitsTwo) {
  const CliParse p =
      parse({"--scenarios", "steady-week,bogus,dc-drain"}, sim::scenario_names());
  EXPECT_EQ(p.exit_code, 2);
  EXPECT_NE(p.message.find("unknown scenario 'bogus'"), std::string::npos) << p.message;
}

TEST(BenchCliTest, AllMixedIntoAScenariosListIsRejected) {
  // "all" is only meaningful as the entire --scenarios value; combined
  // with names it would otherwise sail past validation and blow up later
  // in the sweep runner without the helpful message.
  const CliParse p = parse({"--scenarios", "steady-week,all"}, sim::scenario_names());
  EXPECT_EQ(p.exit_code, 2);
  EXPECT_NE(p.message.find("'all' cannot be combined"), std::string::npos) << p.message;
  const CliParse alone = parse({"--scenarios", "all"}, sim::scenario_names());
  EXPECT_LT(alone.exit_code, 0) << alone.message;
}

TEST(BenchCliTest, KnownScenarioAndAllAreAccepted) {
  for (const auto& name : sim::scenario_names()) {
    const CliParse p = parse({"--scenario", name}, sim::scenario_names());
    EXPECT_LT(p.exit_code, 0) << name << ": " << p.message;
    EXPECT_EQ(p.cli.scenario, name);
  }
  const CliParse all = parse({"--scenario", "all"}, sim::scenario_names());
  EXPECT_LT(all.exit_code, 0) << all.message;
  // Without a library, any scenario string passes through unvalidated
  // (non-sim benches ignore it).
  const CliParse unchecked = parse({"--scenario", "anything"});
  EXPECT_LT(unchecked.exit_code, 0) << unchecked.message;
}

TEST(BenchCliTest, ListScenariosPrintsTheLibraryAndExitsZero) {
  const CliParse p = parse({"--list-scenarios"}, sim::scenario_names());
  EXPECT_EQ(p.exit_code, 0);
  for (const auto& name : sim::scenario_names())
    EXPECT_NE(p.message.find(name + "\n"), std::string::npos) << p.message;
  // Without a scenario library the flag is a usage error.
  const CliParse bare = parse({"--list-scenarios"});
  EXPECT_EQ(bare.exit_code, 2);
}

TEST(BenchCliTest, UsageErrorsExitTwo) {
  EXPECT_EQ(parse({"--no-such-flag"}).exit_code, 2);
  EXPECT_EQ(parse({"--seed"}).exit_code, 2);     // missing value
  EXPECT_EQ(parse({"--weeks", "0"}).exit_code, 2);
  EXPECT_EQ(parse({"--seeds", "0"}).exit_code, 2);
  const CliParse help = parse({"--help"});
  EXPECT_EQ(help.exit_code, 0);
  EXPECT_NE(help.message.find("usage:"), std::string::npos);
}

TEST(BenchCliTest, SplitCsvHandlesEdgeShapes) {
  EXPECT_EQ(split_csv("a,b,c"), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(split_csv("one"), (std::vector<std::string>{"one"}));
  EXPECT_EQ(split_csv(""), (std::vector<std::string>{}));
  EXPECT_EQ(split_csv("a,,b,"), (std::vector<std::string>{"a", "b"}));
  // Whitespace around tokens is trimmed ("a, b" == "a,b").
  EXPECT_EQ(split_csv("a, b ,  c"), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(split_csv("  ,  "), (std::vector<std::string>{}));
}

}  // namespace
}  // namespace titan::bench
