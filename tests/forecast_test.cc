// Tests for Holt-Winters forecasting (§6.1, Fig. 20).
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <vector>

#include "core/rng.h"
#include "forecast/holt_winters.h"

namespace titan::forecast {
namespace {

// Synthetic seasonal series: level + trend + sinusoidal season + noise.
std::vector<double> seasonal_series(int n, int season, double level, double trend,
                                    double amplitude, double noise, std::uint64_t seed) {
  core::Rng rng(seed);
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(n));
  for (int t = 0; t < n; ++t) {
    const double s =
        amplitude * std::sin(2.0 * std::numbers::pi * (t % season) / season);
    out.push_back(std::max(0.0, level + trend * t + s + rng.normal(0.0, noise)));
  }
  return out;
}

TEST(HoltWintersTest, RejectsShortSeries) {
  HoltWintersParams p;
  p.season_length = 10;
  EXPECT_THROW(HoltWinters::fit(std::vector<double>(15, 1.0), p), std::invalid_argument);
  p.season_length = 1;
  EXPECT_THROW(HoltWinters::fit(std::vector<double>(15, 1.0), p), std::invalid_argument);
}

TEST(HoltWintersTest, ForecastsPureSeasonalSeriesAccurately) {
  const int season = 48;
  const auto series = seasonal_series(season * 6, season, 100.0, 0.0, 30.0, 0.0, 1);
  const auto fit = HoltWinters::fit_auto(series, season);
  const auto fc = HoltWinters::forecast(fit, season);
  // The next season should match the pattern closely.
  const std::vector<double> actual = seasonal_series(season * 7, season, 100.0, 0.0, 30.0, 0.0, 1);
  double max_err = 0.0;
  for (int h = 0; h < season; ++h)
    max_err = std::max(max_err,
                       std::abs(fc[static_cast<std::size_t>(h)] -
                                actual[static_cast<std::size_t>(season * 6 + h)]));
  EXPECT_LT(max_err, 6.0);  // within a few percent of the 100-level
}

TEST(HoltWintersTest, CapturesTrend) {
  const int season = 24;
  const auto series = seasonal_series(season * 8, season, 50.0, 0.5, 10.0, 0.0, 2);
  const auto fit = HoltWinters::fit_auto(series, season);
  const auto fc = HoltWinters::forecast(fit, 2 * season);
  // Mean of the forecast should continue the upward trend.
  double mean_fc = 0.0;
  for (const double v : fc) mean_fc += v;
  mean_fc /= static_cast<double>(fc.size());
  const double expected_level = 50.0 + 0.5 * (season * 8 + season);
  EXPECT_NEAR(mean_fc, expected_level, expected_level * 0.15);
}

TEST(HoltWintersTest, NoisySeriesStillReasonable) {
  const int season = 48;
  const auto series = seasonal_series(season * 8, season, 200.0, 0.05, 80.0, 12.0, 3);
  const auto fit = HoltWinters::fit_auto(series, season);
  const auto fc = HoltWinters::forecast(fit, season);
  const auto truth = seasonal_series(season * 9, season, 200.0, 0.05, 80.0, 0.0, 3);
  std::vector<double> actual(truth.end() - season, truth.end());
  const auto err = evaluate_forecast(actual, fc);
  // Fig. 20: median normalized MAE ~5%, RMSE ~11%; allow slack for noise.
  EXPECT_LT(err.mae_normalized, 0.15);
  EXPECT_LT(err.rmse_normalized, 0.2);
}

TEST(HoltWintersTest, ForecastsAreNonNegative) {
  const int season = 12;
  // Series that decays toward zero: forecasts must clamp at 0.
  std::vector<double> series;
  for (int t = 0; t < season * 4; ++t)
    series.push_back(std::max(0.0, 20.0 - 0.4 * t));
  const auto fit = HoltWinters::fit_auto(series, season);
  for (const double v : HoltWinters::forecast(fit, 3 * season)) EXPECT_GE(v, 0.0);
}

TEST(HoltWintersTest, SeasonalPhaseContinuesFromTrainingEnd) {
  const int season = 10;
  // Deterministic sawtooth with period 10; train on a length that is NOT a
  // multiple of the season to exercise the phase bookkeeping.
  std::vector<double> series;
  for (int t = 0; t < season * 5 + 3; ++t) series.push_back(static_cast<double>(t % season));
  HoltWintersParams p;
  p.alpha = 0.2;
  p.beta = 0.0;
  p.gamma = 0.3;
  p.season_length = season;
  const auto fit = HoltWinters::fit(series, p);
  const auto fc = HoltWinters::forecast(fit, 5);
  // Next values continue 3, 4, 5, ... (mod 10) shape-wise: increasing.
  for (std::size_t i = 1; i < fc.size(); ++i) EXPECT_GT(fc[i], fc[i - 1] - 1.0);
}

TEST(EvaluateForecastTest, NormalizesByPeak) {
  const std::vector<double> actual = {0.0, 10.0, 20.0};
  const std::vector<double> pred = {0.0, 10.0, 10.0};
  const auto e = evaluate_forecast(actual, pred);
  EXPECT_NEAR(e.mae_normalized, (10.0 / 3.0) / 20.0, 1e-12);
  EXPECT_GT(e.rmse_normalized, e.mae_normalized);
  // Degenerate inputs.
  EXPECT_DOUBLE_EQ(evaluate_forecast({}, {}).mae_normalized, 0.0);
  EXPECT_DOUBLE_EQ(evaluate_forecast({0.0}, {0.0}).mae_normalized, 0.0);
}

TEST(HoltWintersTest, FitAutoBeatsArbitraryParams) {
  const int season = 24;
  const auto series = seasonal_series(season * 6, season, 80.0, 0.1, 25.0, 5.0, 4);
  const auto best = HoltWinters::fit_auto(series, season);
  HoltWintersParams bad;
  bad.alpha = 0.95;
  bad.beta = 0.9;
  bad.gamma = 0.9;
  bad.season_length = season;
  const auto worse = HoltWinters::fit(series, bad);
  EXPECT_LE(best.training_sse, worse.training_sse);
}

}  // namespace
}  // namespace titan::forecast
