// Tests for the assignment policies (WRR, LF, Titan, TN) and the eval
// metrics on a small trace.
#include <gtest/gtest.h>

#include <set>

#include "eval/metrics.h"
#include "eval/runner.h"
#include "policies/locality_first.h"
#include "policies/titan_next_policy.h"
#include "policies/titan_policy.h"
#include "policies/wrr.h"

namespace titan::policies {
namespace {

class PoliciesTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    world_ = new geo::World(geo::World::make());
    db_ = new net::NetworkDb(*world_);
    ctx_ = new PolicyContext(PolicyContext::make(*db_, geo::Continent::kEurope, 0.20));
    workload::TraceOptions topts;
    topts.weeks = 3;
    topts.peak_slot_calls = 60.0;
    auto full = workload::TraceGenerator(*world_).generate(topts);
    history_ = new workload::Trace(full.window(0, 2 * core::kSlotsPerWeek));
    eval_ = new workload::Trace(
        full.window(2 * core::kSlotsPerWeek, 3 * core::kSlotsPerWeek));
    // Two-day slice for the LP-heavy Titan-Next cases (keeps tests fast).
    eval_short_ = new workload::Trace(eval_->window(0, 2 * core::kSlotsPerDay));
  }
  static void TearDownTestSuite() {
    delete eval_short_;
    delete eval_;
    delete history_;
    delete ctx_;
    delete db_;
    delete world_;
    world_ = nullptr;
    db_ = nullptr;
    ctx_ = nullptr;
    history_ = nullptr;
    eval_ = nullptr;
    eval_short_ = nullptr;
  }

  static titannext::PlanScope test_scope() {
    titannext::PlanScope scope;
    scope.timeslots = core::kSlotsPerDay;
    scope.max_reduced_configs = 25;
    return scope;
  }

  void check_assignments(const PolicyRun& run,
                         const workload::Trace* trace = nullptr) {
    if (trace == nullptr) trace = eval_;
    ASSERT_EQ(run.assignments.size(), trace->calls().size());
    const auto dcs = world_->dcs_in(geo::Continent::kEurope);
    for (const auto& a : run.assignments) {
      ASSERT_TRUE(a.dc.valid());
      bool in_scope = false;
      for (const auto d : dcs) in_scope |= d == a.dc;
      EXPECT_TRUE(in_scope);
    }
  }

  static geo::World* world_;
  static net::NetworkDb* db_;
  static PolicyContext* ctx_;
  static workload::Trace* history_;
  static workload::Trace* eval_;
  static workload::Trace* eval_short_;
};

geo::World* PoliciesTest::world_ = nullptr;
net::NetworkDb* PoliciesTest::db_ = nullptr;
PolicyContext* PoliciesTest::ctx_ = nullptr;
workload::Trace* PoliciesTest::history_ = nullptr;
workload::Trace* PoliciesTest::eval_ = nullptr;
workload::Trace* PoliciesTest::eval_short_ = nullptr;

TEST_F(PoliciesTest, ContextRespectsUnusableCountries) {
  const auto de = world_->find_country("germany");
  const auto fr = world_->find_country("france");
  const auto nl = world_->find_dc("netherlands");
  EXPECT_DOUBLE_EQ(ctx_->fraction(de, nl), 0.0);
  EXPECT_DOUBLE_EQ(ctx_->fraction(fr, nl), 0.20);
}

TEST_F(PoliciesTest, WrrAssignsEveryCallAndUsesInternet) {
  core::Rng rng(1);
  WrrPolicy wrr(*ctx_, /*oracle=*/true);
  const auto run = wrr.run(*eval_, *history_, rng);
  check_assignments(run);
  const double share = eval::internet_share(*eval_, run.assignments);
  EXPECT_GT(share, 0.05);
  EXPECT_LT(share, 0.25);  // bounded by the 20% fractions
}

TEST_F(PoliciesTest, WrrDcDistributionFollowsCores) {
  core::Rng rng(2);
  WrrPolicy wrr(*ctx_, true);
  const auto run = wrr.run(*eval_, *history_, rng);
  std::map<int, int> per_dc;
  for (const auto& a : run.assignments) ++per_dc[a.dc.value()];
  // The biggest DC (netherlands, 190K cores) should host more calls than the
  // smallest (switzerland, 80K cores).
  EXPECT_GT(per_dc[world_->find_dc("netherlands").value()],
            per_dc[world_->find_dc("switzerland").value()]);
}

TEST_F(PoliciesTest, TitanUsesRandomDcButOffloads) {
  core::Rng rng(3);
  TitanPolicy titan(*ctx_);
  const auto run = titan.run(*eval_, *history_, rng);
  check_assignments(run);
  EXPECT_GT(eval::internet_share(*eval_, run.assignments), 0.05);
  // German calls never go to the Internet (fraction 0).
  for (std::size_t i = 0; i < eval_->calls().size(); ++i) {
    if (eval_->calls()[i].first_joiner == world_->find_country("germany"))
      EXPECT_EQ(run.assignments[i].path, net::PathType::kWan);
  }
}

TEST_F(PoliciesTest, LfOnlinePrefersNearbyDcs) {
  core::Rng rng(4);
  LocalityFirstOptions opts;
  opts.oracle = false;
  opts.scope = test_scope();
  LocalityFirstPolicy lf(*ctx_, opts);
  const auto run = lf.run(*eval_, *history_, rng);
  check_assignments(run);

  // Irish calls should land mostly in the Irish DC (closest).
  const auto ie = world_->find_country("ireland");
  const auto ie_dc = world_->find_dc("ireland");
  int total = 0, local = 0;
  for (std::size_t i = 0; i < eval_->calls().size(); ++i) {
    if (eval_->calls()[i].first_joiner != ie) continue;
    ++total;
    local += run.assignments[i].dc == ie_dc;
  }
  ASSERT_GT(total, 10);
  EXPECT_GT(static_cast<double>(local) / total, 0.5);
}

TEST_F(PoliciesTest, TnOracleAssignsAllAndBeatsWrrOnPeaks) {
  core::Rng rng(5);
  TitanNextPolicyOptions opts;
  opts.oracle = true;
  opts.pipeline.scope = test_scope();
  opts.pipeline.lp.e2e_bound_ms = 120.0;
  TitanNextPolicy tn(*ctx_, opts);
  const auto tn_run = tn.run(*eval_short_, *history_, rng);
  check_assignments(tn_run, eval_short_);
  EXPECT_EQ(tn_run.dc_migrations, 0);  // oracle mode never migrates

  WrrPolicy wrr(*ctx_, true);
  core::Rng rng2(6);
  const auto wrr_run = wrr.run(*eval_short_, *history_, rng2);

  const auto tn_usage = eval::wan_usage(*eval_short_, tn_run.assignments, *db_);
  const auto wrr_usage = eval::wan_usage(*eval_short_, wrr_run.assignments, *db_);
  EXPECT_LT(tn_usage.sum_of_peaks_mbps, wrr_usage.sum_of_peaks_mbps);
}

TEST_F(PoliciesTest, TnOnlineCountsMigrations) {
  core::Rng rng(7);
  TitanNextPolicyOptions opts;
  opts.oracle = false;
  opts.pipeline.scope = test_scope();
  opts.pipeline.lp.e2e_bound_ms = 120.0;
  opts.pipeline.top_k_forecast = 20;
  TitanNextPolicy tn(*ctx_, opts);
  const auto run = tn.run(*eval_short_, *history_, rng);
  check_assignments(run, eval_short_);
  // Some calls migrate (international / cross-media mismatches), but far
  // from all (Table 4: 11-19% with reduced configs).
  EXPECT_GT(run.dc_migrations, 0);
  EXPECT_LT(static_cast<double>(run.dc_migrations), 0.45 * eval_short_->calls().size());
}

TEST_F(PoliciesTest, ReducedConfigsCutMigrations) {
  TitanNextPolicyOptions with;
  with.oracle = false;
  with.pipeline.scope = test_scope();
  with.pipeline.lp.e2e_bound_ms = 120.0;
  with.pipeline.use_reduction = true;
  auto without = with;
  without.pipeline.use_reduction = false;

  core::Rng rng_a(8), rng_b(8);
  TitanNextPolicy tn_with(*ctx_, with), tn_without(*ctx_, without);
  const auto run_with = tn_with.run(*eval_short_, *history_, rng_a);
  const auto run_without = tn_without.run(*eval_short_, *history_, rng_b);
  EXPECT_LT(run_with.dc_migrations, run_without.dc_migrations);
}

TEST_F(PoliciesTest, MetricsInternals) {
  // wan_usage: a single intra-country WAN call loads exactly its path links.
  workload::Trace tiny = eval_->window(0, 4);
  ASSERT_GT(tiny.calls().size(), 0u);
  std::vector<CallAssignment> assignments(tiny.calls().size());
  const auto nl = world_->find_dc("netherlands");
  for (auto& a : assignments) a = {nl, net::PathType::kInternet};
  // All-Internet: zero WAN usage.
  const auto usage = eval::wan_usage(tiny, assignments, *db_);
  EXPECT_DOUBLE_EQ(usage.sum_of_peaks_mbps, 0.0);
  EXPECT_DOUBLE_EQ(usage.total_traffic_gb, 0.0);
  EXPECT_DOUBLE_EQ(eval::internet_share(tiny, assignments), 1.0);

  // All-WAN: positive usage and sane latency stats.
  for (auto& a : assignments) a.path = net::PathType::kWan;
  const auto usage2 = eval::wan_usage(tiny, assignments, *db_);
  EXPECT_GT(usage2.sum_of_peaks_mbps, 0.0);
  EXPECT_GT(usage2.total_traffic_gb, 0.0);
  const auto lat = eval::e2e_latency_overall(tiny, assignments, *db_);
  EXPECT_GT(lat.mean, 0.0);
  EXPECT_GE(lat.p95, lat.median);
}

TEST_F(PoliciesTest, RunnerComparesAndRenders) {
  WrrPolicy wrr(*ctx_, true);
  TitanPolicy titan(*ctx_);
  const auto cmp = eval::compare_policies({&wrr, &titan}, *eval_, *history_, *db_, 99);
  ASSERT_EQ(cmp.results.size(), 2u);
  const std::string peaks = cmp.render_peaks_table();
  EXPECT_NE(peaks.find("WRR"), std::string::npos);
  EXPECT_NE(peaks.find("Titan"), std::string::npos);
  EXPECT_NE(peaks.find("Mon"), std::string::npos);
  const std::string lat = cmp.render_latency_table();
  EXPECT_NE(lat.find("P95"), std::string::npos);
  // Titan offloads ~uniformly; reduction vs WRR is small but finite.
  const double red = cmp.weekday_reduction_pct(1, 0);
  EXPECT_GT(red, -20.0);
  EXPECT_LT(red, 60.0);
}


TEST_F(PoliciesTest, PinnedIntraCountryKillsSavingsButFixesMigrations) {
  // §6.3 "What did not work": forcing each country onto a single MP DC.
  TitanNextPolicyOptions free_opts;
  free_opts.oracle = true;
  free_opts.pipeline.scope = test_scope();
  free_opts.pipeline.lp.e2e_bound_ms = 120.0;
  auto pinned_opts = free_opts;
  pinned_opts.pin_intra_country = true;

  core::Rng rng_a(21), rng_b(21);
  TitanNextPolicy tn_free(*ctx_, free_opts), tn_pinned(*ctx_, pinned_opts);
  const auto run_free = tn_free.run(*eval_short_, *history_, rng_a);
  const auto run_pinned = tn_pinned.run(*eval_short_, *history_, rng_b);

  // Pinning: within each planning day, all calls from one country land on
  // one DC (the pin is recomputed per daily plan, as the paper re-runs the
  // ILP per horizon).
  std::map<std::pair<int, int>, std::set<int>> dcs_by_country_day;
  for (std::size_t i = 0; i < eval_short_->calls().size(); ++i) {
    const auto& call = eval_short_->calls()[i];
    dcs_by_country_day[{call.first_joiner.value(),
                        call.start_slot / core::kSlotsPerDay}]
        .insert(run_pinned.assignments[i].dc.value());
  }
  for (const auto& [key, dcs] : dcs_by_country_day) EXPECT_EQ(dcs.size(), 1u);

  // And the savings collapse: pinned peaks are no better than the free plan.
  const auto free_usage = eval::wan_usage(*eval_short_, run_free.assignments, *db_);
  const auto pinned_usage = eval::wan_usage(*eval_short_, run_pinned.assignments, *db_);
  EXPECT_GE(pinned_usage.sum_of_peaks_mbps, free_usage.sum_of_peaks_mbps * 0.98);
}

}  // namespace
}  // namespace titan::policies
