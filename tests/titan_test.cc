// Tests for the Titan production system (§4): scorecards, the ramp state
// machine, reactions (decrement, emergency brake, per-user and transit
// failover), and capacity export.
#include <gtest/gtest.h>

#include "titan/ramp.h"
#include "titan/scorecard.h"
#include "titan/titan.h"

namespace titan::titan_sys {
namespace {

// --- Scorecards ---------------------------------------------------------------

media::CallTelemetry make_call(core::CountryId country, core::DcId dc, net::PathType path,
                               double loss, double rtt, double jitter) {
  media::CallTelemetry call;
  call.call = core::CallId(1);
  call.dc = dc;
  media::ParticipantTelemetry p;
  p.country = country;
  p.dc = dc;
  p.path = path;
  p.rtp_loss = loss;
  p.rtt_ms = rtt;
  p.jitter_ms = jitter;
  call.participants.push_back(p);
  return call;
}

TEST(ScorecardTest, SeparatesArmsAndComputesMedians) {
  const core::CountryId fr(1);
  const core::DcId nl(2);
  std::vector<media::CallTelemetry> telemetry;
  for (int i = 0; i < 30; ++i) {
    telemetry.push_back(
        make_call(fr, nl, net::PathType::kWan, 0.0001, 20.0 + i * 0.1, 3.4));
    telemetry.push_back(
        make_call(fr, nl, net::PathType::kInternet, 0.002, 22.0 + i * 0.1, 3.6));
  }
  const auto cards = build_scorecards(telemetry);
  ASSERT_EQ(cards.size(), 1u);
  const Scorecard& sc = cards.front();
  EXPECT_TRUE(sc.has_signal());
  EXPECT_EQ(sc.wan.samples, 30u);
  EXPECT_EQ(sc.internet.samples, 30u);
  EXPECT_NEAR(sc.internet.p50_loss, 0.002, 1e-9);
  EXPECT_NEAR(sc.latency_inflation(), 2.0 / 21.45, 0.02);
}

TEST(ScorecardTest, GroupsByPair) {
  std::vector<media::CallTelemetry> telemetry;
  telemetry.push_back(make_call(core::CountryId(1), core::DcId(1), net::PathType::kWan,
                                0.0, 10, 3));
  telemetry.push_back(make_call(core::CountryId(1), core::DcId(2), net::PathType::kWan,
                                0.0, 10, 3));
  telemetry.push_back(make_call(core::CountryId(2), core::DcId(1), net::PathType::kWan,
                                0.0, 10, 3));
  EXPECT_EQ(build_scorecards(telemetry).size(), 3u);
}

TEST(ScorecardTest, ThinDataHasNoSignal) {
  std::vector<media::CallTelemetry> telemetry = {
      make_call(core::CountryId(1), core::DcId(1), net::PathType::kInternet, 0.0, 10, 3)};
  EXPECT_FALSE(build_scorecards(telemetry).front().has_signal());
}

// --- Ramp controller ------------------------------------------------------------

Scorecard healthy_card() {
  Scorecard sc;
  sc.internet.samples = sc.wan.samples = 100;
  sc.internet.p50_loss = 0.00005;
  sc.wan.p50_loss = 0.00002;
  sc.internet.p50_rtt_ms = 21.0;
  sc.wan.p50_rtt_ms = 20.0;
  return sc;
}

TEST(RampTest, RampsInSmallIncrementsAndStopsAtCap) {
  core::Rng rng(1);
  RampController ramp;
  double prev = 0.0;
  for (int epoch = 0; epoch < 40; ++epoch) {
    ramp.step(healthy_card(), rng);
    const double f = ramp.fraction();
    EXPECT_GE(f, prev);                 // healthy: monotone ramp
    EXPECT_LE(f - prev, 0.03 + 1e-12);  // "1-3% at a time"
    prev = f;
  }
  // Safety over optimality: stops at 20% even with perfect metrics.
  EXPECT_DOUBLE_EQ(ramp.fraction(), 0.20);
  EXPECT_EQ(ramp.state(), RampState::kHolding);
  EXPECT_EQ(ramp.emergency_brakes(), 0);
}

TEST(RampTest, ModerateDegradationDecrements) {
  core::Rng rng(2);
  RampController ramp;
  for (int epoch = 0; epoch < 10; ++epoch) ramp.step(healthy_card(), rng);
  const double before = ramp.fraction();
  ASSERT_GT(before, 0.05);

  Scorecard moderate = healthy_card();
  moderate.internet.p50_loss = 0.005;  // elevated but < 1%
  ramp.step(moderate, rng);
  EXPECT_LT(ramp.fraction(), before);
  EXPECT_EQ(ramp.emergency_brakes(), 0);
  EXPECT_EQ(ramp.decrements(), 1);
}

TEST(RampTest, LatencyInflationAloneDecrements) {
  core::Rng rng(3);
  RampController ramp;
  for (int epoch = 0; epoch < 10; ++epoch) ramp.step(healthy_card(), rng);
  const double before = ramp.fraction();
  Scorecard slow = healthy_card();
  slow.internet.p50_rtt_ms = slow.wan.p50_rtt_ms * 1.2;  // +20% > 10% threshold
  ramp.step(slow, rng);
  EXPECT_LT(ramp.fraction(), before);
}

TEST(RampTest, EmergencyBrakeZerosTrafficAndCoolsDown) {
  core::Rng rng(4);
  RampController ramp;
  for (int epoch = 0; epoch < 10; ++epoch) ramp.step(healthy_card(), rng);
  ASSERT_GT(ramp.fraction(), 0.0);

  Scorecard severe = healthy_card();
  severe.internet.p50_loss = 0.02;  // >= 1%
  ramp.step(severe, rng);
  EXPECT_DOUBLE_EQ(ramp.fraction(), 0.0);
  EXPECT_EQ(ramp.state(), RampState::kBackoff);
  EXPECT_EQ(ramp.emergency_brakes(), 1);

  // Stays parked through the cooldown even with healthy cards.
  ramp.step(healthy_card(), rng);
  EXPECT_DOUBLE_EQ(ramp.fraction(), 0.0);
  // Eventually resumes ramping from zero.
  for (int epoch = 0; epoch < 6; ++epoch) ramp.step(healthy_card(), rng);
  EXPECT_EQ(ramp.state(), RampState::kRamping);
  EXPECT_GT(ramp.fraction(), 0.0);
  EXPECT_LT(ramp.fraction(), 0.15);
}

TEST(RampTest, DisabledPairNeverMoves) {
  core::Rng rng(5);
  RampController ramp({}, /*internet_allowed=*/false);
  for (int epoch = 0; epoch < 20; ++epoch) ramp.step(healthy_card(), rng);
  EXPECT_DOUBLE_EQ(ramp.fraction(), 0.0);
  EXPECT_EQ(ramp.state(), RampState::kDisabled);
}

// --- TitanSystem ------------------------------------------------------------------

class TitanSystemTest : public ::testing::Test {
 protected:
  geo::World world_ = geo::World::make();
  net::NetworkDb db_{world_};
  TitanSystem titan_{db_, geo::Continent::kEurope};
};

TEST_F(TitanSystemTest, ManagesAllEuropeanPairs) {
  const auto countries = world_.countries_in(geo::Continent::kEurope);
  const auto dcs = world_.dcs_in(geo::Continent::kEurope);
  EXPECT_EQ(titan_.pairs().size(), countries.size() * dcs.size());
}

TEST_F(TitanSystemTest, UnusableCountriesStayOnWan) {
  const auto de = world_.find_country("germany");
  const auto nl = world_.find_dc("netherlands");
  core::Rng rng(6);
  // Ramp a few epochs with empty telemetry.
  for (int epoch = 0; epoch < 8; ++epoch) titan_.control_step({});
  EXPECT_EQ(titan_.pair_state(de, nl), RampState::kDisabled);
  EXPECT_DOUBLE_EQ(titan_.internet_fraction(de, nl), 0.0);
  for (int i = 0; i < 50; ++i)
    EXPECT_EQ(titan_.assign_path(de, nl, rng), net::PathType::kWan);
}

TEST_F(TitanSystemTest, AssignPathMatchesFraction) {
  const auto fr = world_.find_country("france");
  const auto nl = world_.find_dc("netherlands");
  for (int epoch = 0; epoch < 12; ++epoch) titan_.control_step({});
  const double f = titan_.internet_fraction(fr, nl);
  ASSERT_GT(f, 0.05);
  core::Rng rng(7);
  int internet = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i)
    internet += titan_.assign_path(fr, nl, rng) == net::PathType::kInternet;
  EXPECT_NEAR(static_cast<double>(internet) / n, f, 0.02);
}

TEST_F(TitanSystemTest, CapacityExportScalesWithFractionAndHeadroom) {
  const auto fr = world_.find_country("france");
  const auto nl = world_.find_dc("netherlands");
  for (int epoch = 0; epoch < 12; ++epoch) titan_.control_step({});
  const double cap = titan_.internet_capacity_mbps(fr, nl);
  EXPECT_NEAR(cap, titan_.internet_fraction(fr, nl) * db_.pair_peak_demand(fr, nl), 1e-9);
  EXPECT_NEAR(titan_.internet_capacity_mbps(fr, nl, 2.0), 2.0 * cap, 1e-9);
}

TEST_F(TitanSystemTest, PerUserFailoverRules) {
  const auto fr = world_.find_country("france");
  const auto nl = world_.find_dc("netherlands");
  media::ParticipantTelemetry t;
  t.country = fr;
  t.dc = nl;
  t.path = net::PathType::kInternet;
  t.rtp_loss = 0.02;  // >= 1%
  t.rtt_ms = 20.0;
  EXPECT_TRUE(titan_.should_failover_user(t));
  t.rtp_loss = 0.0;
  t.rtt_ms = 10.0 * db_.latency().base_rtt_ms(fr, nl, net::PathType::kWan);
  EXPECT_TRUE(titan_.should_failover_user(t));
  t.rtt_ms = 20.0;
  EXPECT_FALSE(titan_.should_failover_user(t));
  t.path = net::PathType::kWan;
  t.rtp_loss = 0.5;  // WAN users are never failed over (they're already there)
  EXPECT_FALSE(titan_.should_failover_user(t));
}

TEST_F(TitanSystemTest, SevereTelemetryTriggersEmergencyBrake) {
  const auto fr = world_.find_country("france");
  const auto nl = world_.find_dc("netherlands");
  for (int epoch = 0; epoch < 10; ++epoch) titan_.control_step({});
  ASSERT_GT(titan_.internet_fraction(fr, nl), 0.0);

  // Feed a window of severe Internet loss for the pair.
  std::vector<media::CallTelemetry> bad;
  for (int i = 0; i < 40; ++i) {
    bad.push_back(make_call(fr, nl, net::PathType::kInternet, 0.05, 25.0, 4.0));
    bad.push_back(make_call(fr, nl, net::PathType::kWan, 0.0001, 24.0, 3.4));
  }
  titan_.control_step(bad);
  EXPECT_DOUBLE_EQ(titan_.internet_fraction(fr, nl), 0.0);
  EXPECT_EQ(titan_.pair_state(fr, nl), RampState::kBackoff);
}

TEST_F(TitanSystemTest, WidespreadDegradationFiresTransitFailover) {
  const auto nl = world_.find_dc("netherlands");
  const auto eu = world_.countries_in(geo::Continent::kEurope);
  for (int epoch = 0; epoch < 10; ++epoch) titan_.control_step({});

  std::vector<media::CallTelemetry> bad;
  for (const auto c : eu) {
    if (db_.loss().internet_unusable(c)) continue;
    for (int i = 0; i < 30; ++i) {
      bad.push_back(make_call(c, nl, net::PathType::kInternet, 0.006, 25.0, 4.0));
      bad.push_back(make_call(c, nl, net::PathType::kWan, 0.0001, 24.0, 3.4));
    }
  }
  const int before = titan_.transit_failovers();
  titan_.control_step(bad);
  EXPECT_GT(titan_.transit_failovers(), before);
}

}  // namespace
}  // namespace titan::titan_sys
