// End-to-end integration tests: the full loop of the paper's systems.
//
//  1. Measurement study -> fraction-F structure feeds Titan's candidate
//     region choice (Europe).
//  2. Titan ramps live traffic (relay-sim telemetry -> scorecards -> ramp)
//     and exports per-pair capacities.
//  3. Titan-Next plans jointly over those capacities and beats the
//     baselines on sum-of-peak WAN bandwidth (Fig. 14/15 shape).
#include <gtest/gtest.h>

#include "eval/runner.h"
#include "measure/aggregate.h"
#include "measure/probe_platform.h"
#include "media/relay_sim.h"
#include "policies/locality_first.h"
#include "policies/titan_next_policy.h"
#include "policies/titan_policy.h"
#include "policies/wrr.h"
#include "titan/titan.h"
#include "titannext/pipeline.h"

namespace titan {
namespace {

class IntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    world_ = new geo::World(geo::World::make());
    db_ = new net::NetworkDb(*world_);
    ctx_ = new policies::PolicyContext(
        policies::PolicyContext::make(*db_, geo::Continent::kEurope, 0.20));
    workload::TraceOptions topts;
    topts.weeks = 3;
    topts.peak_slot_calls = 60.0;
    auto full = workload::TraceGenerator(*world_).generate(topts);
    history_ = new workload::Trace(full.window(0, 2 * core::kSlotsPerWeek));
    // Monday-Wednesday of the eval week (keeps the LP-heavy runs fast).
    eval_ = new workload::Trace(full.window(2 * core::kSlotsPerWeek,
                                            2 * core::kSlotsPerWeek +
                                                3 * core::kSlotsPerDay));
  }
  static void TearDownTestSuite() {
    delete eval_;
    delete history_;
    delete ctx_;
    delete db_;
    delete world_;
    world_ = nullptr;
    db_ = nullptr;
    ctx_ = nullptr;
    history_ = nullptr;
    eval_ = nullptr;
  }

  static titannext::PlanScope scope() {
    titannext::PlanScope s;
    s.timeslots = core::kSlotsPerDay;
    s.max_reduced_configs = 25;
    return s;
  }

  static geo::World* world_;
  static net::NetworkDb* db_;
  static policies::PolicyContext* ctx_;
  static workload::Trace* history_;
  static workload::Trace* eval_;
};

geo::World* IntegrationTest::world_ = nullptr;
net::NetworkDb* IntegrationTest::db_ = nullptr;
policies::PolicyContext* IntegrationTest::ctx_ = nullptr;
workload::Trace* IntegrationTest::history_ = nullptr;
workload::Trace* IntegrationTest::eval_ = nullptr;

// Measurement -> region choice: Europe must look attractive in the F
// heatmap computed from an actual probe corpus (the §3 -> §4 hand-off).
TEST_F(IntegrationTest, MeasurementStudyMarksEuropeAsCandidate) {
  const geo::GeoDb geodb = geo::GeoDb::make(*world_);
  const measure::ProbePlatform platform(*world_, geodb, db_->latency());
  measure::StudyOptions opts;
  opts.days = 1;
  opts.probes_per_hour = 20000;
  const auto corpus = platform.run(opts);
  const auto table = measure::hourly_medians(corpus, measure::Granularity::kCountry, 24);

  double eu_sum = 0.0;
  int eu_n = 0;
  double hk_sum = 0.0;
  int hk_n = 0;
  const auto hk = world_->find_dc("hongkong");
  for (const auto& cell : measure::fraction_heatmap(table)) {
    const auto& country = world_->country(cell.country);
    const auto& dc = world_->dc(cell.dc);
    if (country.continent == geo::Continent::kEurope &&
        dc.continent == geo::Continent::kEurope) {
      eu_sum += cell.f;
      ++eu_n;
    }
    if (country.continent == geo::Continent::kEurope && cell.dc == hk) {
      hk_sum += cell.f;
      ++hk_n;
    }
  }
  ASSERT_GT(eu_n, 20);
  ASSERT_GT(hk_n, 5);
  EXPECT_GT(eu_sum / eu_n, hk_sum / hk_n);  // Europe is the safer candidate
  EXPECT_GT(eu_sum / eu_n, 0.4);
}

// Titan closed loop: relay telemetry -> scorecards -> ramp; healthy pairs
// reach the cap, unusable pairs brake to zero, and the exported capacities
// feed Titan-Next.
TEST_F(IntegrationTest, TitanClosedLoopRampsAndExportsCapacity) {
  net::NetworkDb db(*world_);  // private instance: failovers mutate state
  titan_sys::TitanSystem titan(db, geo::Continent::kEurope);
  const media::MosModel mos;
  const media::RelaySimulator relay(db, mos);
  core::Rng rng(42);

  const auto fr = world_->find_country("france");
  const auto nl = world_->find_dc("netherlands");

  for (int epoch = 0; epoch < 14; ++epoch) {
    // A small batch of intra-country French calls against the NL DC, with
    // routing assigned by Titan at its current fraction.
    std::vector<media::Call> calls;
    for (int i = 0; i < 60; ++i) {
      media::Call call;
      call.id = core::CallId(epoch * 1000 + i);
      call.mp_dc = nl;
      call.media = media::MediaType::kAudio;
      for (int p = 0; p < 2; ++p)
        call.participants.push_back({core::ParticipantId(i * 2 + p), fr,
                                     titan.assign_path(fr, nl, rng)});
      calls.push_back(std::move(call));
    }
    const auto telemetry =
        relay.simulate_slot(calls, epoch * 24, nullptr, rng);
    titan.control_step(telemetry);
  }

  // France ramped up (clean Internet paths in the ground truth).
  EXPECT_GT(titan.internet_fraction(fr, nl), 0.05);
  // Germany is flagged unusable and never ramps.
  EXPECT_DOUBLE_EQ(titan.internet_fraction(world_->find_country("germany"), nl), 0.0);
  // Exported capacity is usable by the Titan-Next planner.
  std::map<std::pair<int, int>, double> fractions;
  for (const auto& [c, d] : titan.pairs())
    fractions[{c.value(), d.value()}] = titan.internet_fraction(c, d);
  titannext::PlanInputs inputs(db, scope(), fractions);
  inputs.set_demand(eval_->configs(), eval_->config_counts(), true);
  double total_inet = 0.0;
  for (const auto dc : inputs.dcs()) total_inet += inputs.internet_capacity(dc);
  EXPECT_GT(total_inet, 0.0);
}

// The Fig. 14 / Fig. 15 shape: TN beats LF beats WRR on sum-of-peaks, and
// TN's latency stays close to LF's (Table 3).
TEST_F(IntegrationTest, PolicyOrderingMatchesPaper) {
  policies::WrrPolicy wrr(*ctx_, /*oracle=*/true);
  policies::LocalityFirstOptions lf_opts;
  lf_opts.oracle = true;
  lf_opts.scope = scope();
  policies::LocalityFirstPolicy lf(*ctx_, lf_opts);
  policies::TitanPolicy titan(*ctx_);
  policies::TitanNextPolicyOptions tn_opts;
  tn_opts.oracle = true;
  tn_opts.pipeline.scope = scope();
  tn_opts.pipeline.lp.e2e_bound_ms = 100.0;
  policies::TitanNextPolicy tn(*ctx_, tn_opts);

  const auto cmp =
      eval::compare_policies({&wrr, &lf, &titan, &tn}, *eval_, *history_, *db_, 7);
  // Fig. 14 reports the sum of per-link peaks computed within each day;
  // aggregate across the eval days.
  auto daily_total = [&](std::size_t p) {
    double acc = 0.0;
    for (const double v : cmp.results[p].wan.per_day_sum_of_peaks_mbps) acc += v;
    return acc;
  };
  const double wrr_peaks = daily_total(0);
  const double lf_peaks = daily_total(1);
  const double titan_peaks = daily_total(2);
  const double tn_peaks = daily_total(3);

  // Ordering: TN cheapest, then LF, then WRR. Titan matches WRR's random
  // placement but offloads, so it sits at or below WRR.
  EXPECT_LT(tn_peaks, lf_peaks);
  EXPECT_LT(lf_peaks, wrr_peaks);
  EXPECT_LT(titan_peaks, wrr_peaks * 1.05);

  // Magnitudes loosely in the paper's bands (TN -24..28% vs WRR oracle).
  const double tn_vs_wrr = 1.0 - tn_peaks / wrr_peaks;
  EXPECT_GT(tn_vs_wrr, 0.10);
  EXPECT_LT(tn_vs_wrr, 0.75);

  // Latency: LF <= TN <= WRR (Table 3's ordering), within slack.
  const double lf_lat = cmp.results[1].latency_overall.mean;
  const double tn_lat = cmp.results[3].latency_overall.mean;
  const double wrr_lat = cmp.results[0].latency_overall.mean;
  EXPECT_LE(lf_lat, tn_lat + 5.0);
  EXPECT_LT(tn_lat, wrr_lat + 5.0);

  // Rendering works on real data.
  EXPECT_FALSE(cmp.render_peaks_table().empty());
  EXPECT_FALSE(cmp.render_latency_table().empty());
}

// Prediction-based mode (§8): TN-online still beats the online baselines,
// by a larger margin than in oracle mode.
TEST_F(IntegrationTest, OnlineModeKeepsTheOrdering) {
  // §8's dynamics need realistic (tight-ish) provisioning: first-joiner
  // baselines fill the preferred DCs early and push later calls far away,
  // while TN plans around the predicted peak.
  titannext::PlanScope online_scope = scope();
  online_scope.compute_headroom = 1.3;

  policies::WrrPolicy wrr(*ctx_, /*oracle=*/false);
  policies::LocalityFirstOptions lf_opts;
  lf_opts.oracle = false;
  lf_opts.scope = online_scope;
  policies::LocalityFirstPolicy lf(*ctx_, lf_opts);
  policies::TitanNextPolicyOptions tn_opts;
  tn_opts.oracle = false;
  tn_opts.pipeline.scope = online_scope;
  tn_opts.pipeline.lp.e2e_bound_ms = 100.0;
  tn_opts.pipeline.top_k_forecast = 25;
  policies::TitanNextPolicy tn(*ctx_, tn_opts);

  const auto cmp = eval::compare_policies({&wrr, &lf, &tn}, *eval_, *history_, *db_, 11);
  auto daily_total = [&](std::size_t p) {
    double acc = 0.0;
    for (const double v : cmp.results[p].wan.per_day_sum_of_peaks_mbps) acc += v;
    return acc;
  };
  const double wrr_peaks = daily_total(0);
  const double lf_peaks = daily_total(1);
  const double tn_peaks = daily_total(2);
  EXPECT_LT(tn_peaks, lf_peaks);
  EXPECT_LT(tn_peaks, wrr_peaks);
  // §8.2: larger margins than the oracle case (55-61% vs WRR in the paper;
  // assert a loose lower bound).
  EXPECT_GT(1.0 - tn_peaks / wrr_peaks, 0.2);
}

// Fiber-cut fallback (§4.2 finding 7): severing a WAN link on the SA path
// leaves the Internet option available as a fallback with sane latency.
TEST_F(IntegrationTest, FiberCutFallbackToInternet) {
  net::NetworkDb db(*world_);
  const auto za = world_->find_country("southafrica");
  const auto za_dc = world_->find_dc("southafrica");
  db.cut_wan_link_on_path(za, za_dc, 0.0);
  // Internet path unaffected by the WAN cut; latency still reasonable.
  const double internet_rtt =
      db.latency().base_rtt_ms(za, za_dc, net::PathType::kInternet);
  const double wan_rtt = db.latency().base_rtt_ms(za, za_dc, net::PathType::kWan);
  EXPECT_LT(internet_rtt, wan_rtt * 2.5);
  EXPECT_LT(internet_rtt, 150.0);
}

}  // namespace
}  // namespace titan
