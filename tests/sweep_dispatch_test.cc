// Tests for the distributed sweep dispatcher (sweep/dispatch.h) and the
// worker protocol it speaks (sweep/protocol.h).
//
// Two layers:
//
//  * In-process fakes: a WorkerTransport that executes work specs inline
//    and injects scripted faults (worker death, timeouts, truncated /
//    corrupt / mis-versioned answers, wrong task echoes) — fast, covers
//    the dispatcher's retry / respawn / fail-loudly state machine against
//    every fault mode, and proves the recovered aggregate is byte-identical
//    to the in-process SweepRunner.
//
//  * Real subprocesses: `bench_sim_sweep --worker` spawned from the build
//    directory over pipes — the merge audit (1-, 2-, and 4-worker sweeps
//    over the whole scenario library bit-compare equal to SweepRunner,
//    shuffled dispatch order included) and a fault chain driven by the
//    bench's own --worker-fault injection (die, truncate, corrupt,
//    bad-version, then a healthy respawn) plus a hung-worker timeout kill.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstring>
#include <mutex>
#include <stdexcept>
#include <vector>

#include "sim/scenario.h"
#include "sweep/dispatch.h"
#include "sweep/protocol.h"
#include "sweep/serialize.h"
#include "sweep/sweep.h"

namespace titan::sweep {
namespace {

// Mirrors sweep_test's small_spec: every scenario shrunk to ctest cost.
SweepSpec library_spec() {
  SweepSpec spec;
  spec.num_seeds = 1;
  spec.peak_slot_calls = 25.0;
  spec.training_weeks = 1;
  spec.shards = 8;
  spec.replan_interval_slots = 12;
  spec.max_reduced_configs = 20;
  spec.oracle_counts = true;
  return spec;
}

// One cheap scenario, two seeds: the fault-injection workload.
SweepSpec tiny_spec() {
  SweepSpec spec = library_spec();
  spec.scenarios = {"steady-week"};
  spec.num_seeds = 2;
  return spec;
}

// The byte-comparison surface: everything but the declared wall-clock
// metrics, which are the only legitimate difference between schedules.
std::string masked_text(SweepResult result) {
  mask_timing_metrics(result);
  return to_json_text(result);
}

// --- in-process fakes ----------------------------------------------------

enum class Fault {
  none,         // answer normally
  eof,          // die without a byte (worker crash / exec failure)
  timeout,      // never answer (hung worker)
  truncate,     // half the answer line (cut pipe mid-write)
  corrupt,      // a full line that is not JSON
  bad_version,  // well-formed answer from an unknown protocol version
  wrong_echo,   // answer for a different (scenario, seed) than dispatched
};

// Executes work specs inline; consumes one scripted fault per task, then
// answers cleanly forever. Optionally logs every dispatched line so tests
// can inspect what actually crossed the "wire".
class FakeWorker final : public WorkerTransport {
 public:
  FakeWorker(std::vector<Fault> script, std::vector<std::string>* sent_log,
             std::mutex* log_mu)
      : script_(std::move(script)), sent_log_(sent_log), log_mu_(log_mu) {}

  void send(const std::string& line) override {
    if (dead_) throw std::runtime_error("fake worker: send to a dead worker");
    if (sent_log_ != nullptr) {
      std::lock_guard<std::mutex> lock(*log_mu_);
      sent_log_->push_back(line);
    }
    pending_ = line;
  }

  Recv recv(std::string& line, double /*timeout_sec*/) override {
    Fault fault = Fault::none;
    if (task_ < script_.size()) fault = script_[task_];
    ++task_;
    if (fault == Fault::eof) {
      dead_ = true;
      return Recv::eof;
    }
    if (fault == Fault::timeout) return Recv::timeout;

    PartialResult partial = run_work_spec(work_spec_from_text(pending_));
    if (fault == Fault::wrong_echo) partial.seed += 1;
    if (fault == Fault::bad_version) partial.protocol = kWorkProtocolVersion + 98;
    std::string answer = to_json_line(partial);
    if (fault == Fault::truncate) answer.resize(answer.size() / 2);
    if (fault == Fault::corrupt) answer = "{\"protocol\": 1, this is not json}";
    line = std::move(answer);
    return Recv::ok;
  }

 private:
  std::vector<Fault> script_;
  std::vector<std::string>* sent_log_;
  std::mutex* log_mu_;
  std::string pending_;
  std::size_t task_ = 0;
  bool dead_ = false;
};

// Factory whose Nth spawned transport gets the Nth script (later spawns
// are healthy). Tracks spawn count.
struct FakeFleet {
  std::vector<std::vector<Fault>> spawn_scripts;
  std::vector<std::string> sent_log;
  std::mutex mu;
  int spawned = 0;

  WorkerFactory factory(bool log_sends = false) {
    return [this, log_sends]() -> std::unique_ptr<WorkerTransport> {
      std::vector<Fault> script;
      {
        std::lock_guard<std::mutex> lock(mu);
        const std::size_t n = static_cast<std::size_t>(spawned++);
        if (n < spawn_scripts.size()) script = spawn_scripts[n];
      }
      return std::make_unique<FakeWorker>(std::move(script), log_sends ? &sent_log : nullptr,
                                          &mu);
    };
  }
};

// --- dispatcher correctness against every injected fault mode ------------

class SweepDispatchFaultTest : public ::testing::TestWithParam<Fault> {};

// One worker's first task hits the fault; the dispatcher must kill that
// worker, respawn, re-dispatch, and still produce the in-process bytes.
TEST_P(SweepDispatchFaultTest, FaultIsRetriedAndResultStaysByteIdentical) {
  const SweepSpec spec = tiny_spec();
  const std::string reference = masked_text(SweepRunner(spec).run());

  FakeFleet fleet;
  fleet.spawn_scripts = {{GetParam()}};  // first spawn faults once
  DispatchOptions options;
  options.workers = 2;
  options.task_timeout_sec = 0.2;  // fakes "time out" instantly; keep tests fast
  SweepDispatcher dispatcher(spec, fleet.factory(), options);
  const SweepResult result = dispatcher.run();

  EXPECT_EQ(masked_text(result), reference);
  const DispatchReport& report = dispatcher.report();
  int faults = 0, completed = 0;
  for (const auto& w : report.workers) {
    faults += w.faults;
    completed += w.tasks_completed;
  }
  EXPECT_EQ(faults, 1);
  EXPECT_EQ(completed, 2);  // 1 scenario x 2 seeds
  EXPECT_EQ(report.retries, 1);
  // At least the faulty spawn plus a healthy one; whether the faulted slot
  // respawns depends on which slot wins the requeued task (racy, and
  // allowed to be — the bytes above are not).
  EXPECT_GE(fleet.spawned, 2);
}

INSTANTIATE_TEST_SUITE_P(AllFaultModes, SweepDispatchFaultTest,
                         ::testing::Values(Fault::eof, Fault::timeout, Fault::truncate,
                                           Fault::corrupt, Fault::bad_version,
                                           Fault::wrong_echo));

// A spec that fails on every attempt must fail the sweep with the offending
// (scenario, seed) named — never silently drop work or hang.
TEST(SweepDispatchTest, ExhaustedRetriesFailLoudlyNamingTheSpec) {
  const SweepSpec spec = tiny_spec();
  FakeFleet fleet;
  // Every transport ever spawned answers EOF to everything.
  fleet.spawn_scripts.assign(64, std::vector<Fault>(8, Fault::eof));
  DispatchOptions options;
  options.workers = 2;
  options.max_attempts = 3;
  options.max_respawns = 8;
  SweepDispatcher dispatcher(spec, fleet.factory(), options);
  try {
    (void)dispatcher.run();
    FAIL() << "a permanently failing spec must fail the sweep";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("scenario=steady-week"), std::string::npos) << what;
    EXPECT_NE(what.find("seed="), std::string::npos) << what;
    EXPECT_NE(what.find("failed after 3 attempts"), std::string::npos) << what;
  }
}

// Worker slots that cannot even spawn retire after requeueing their work;
// when no slot is left the dispatcher reports it instead of deadlocking.
TEST(SweepDispatchTest, UnspawnableWorkersFailTheSweepInsteadOfHanging) {
  SweepDispatcher dispatcher(
      tiny_spec(),
      []() -> std::unique_ptr<WorkerTransport> {
        throw std::runtime_error("spawn refused");
      },
      DispatchOptions{.workers = 1});
  EXPECT_THROW((void)dispatcher.run(), std::runtime_error);
}

// The dispatcher validates like the runner: bad specs and bad options are
// rejected before any worker spawns.
TEST(SweepDispatchTest, RejectsBadSpecsAndOptionsUpFront) {
  FakeFleet fleet;
  SweepSpec bad = tiny_spec();
  bad.scenarios = {"no-such-scenario"};
  EXPECT_THROW(SweepDispatcher(bad, fleet.factory(), DispatchOptions{}),
               std::invalid_argument);
  EXPECT_THROW(SweepDispatcher(tiny_spec(), fleet.factory(), DispatchOptions{.workers = 0}),
               std::invalid_argument);
  EXPECT_THROW(
      SweepDispatcher(tiny_spec(), fleet.factory(), DispatchOptions{.task_timeout_sec = 0.0}),
      std::invalid_argument);
  EXPECT_THROW(
      SweepDispatcher(tiny_spec(), fleet.factory(), DispatchOptions{.max_attempts = 0}),
      std::invalid_argument);
  EXPECT_THROW(SweepDispatcher(tiny_spec(), WorkerFactory{}, DispatchOptions{}),
               std::invalid_argument);
}

// What crosses the wire describes the work, never the scheduling: the
// spec's execution knobs are normalized out of every dispatched WorkSpec,
// and a dispatch-order shuffle reorders the sends without changing a byte
// of the result.
TEST(SweepDispatchTest, WireSpecsAreNormalizedAndShuffleOnlyReordersDispatch) {
  SweepSpec spec = tiny_spec();
  spec.num_seeds = 4;
  spec.workers = 7;             // in-process knobs, meaningless on the wire
  spec.task_order_seed = 1234;

  FakeFleet ordered;
  SweepDispatcher a(spec, ordered.factory(/*log_sends=*/true),
                    DispatchOptions{.workers = 1});
  const std::string bytes_a = masked_text(a.run());
  ASSERT_EQ(ordered.sent_log.size(), 4u);
  std::vector<std::uint64_t> seeds_a;
  for (const auto& line : ordered.sent_log) {
    const WorkSpec sent = work_spec_from_text(line);
    EXPECT_EQ(sent.spec.workers, 0);
    EXPECT_EQ(sent.spec.task_order_seed, 0u);
    EXPECT_EQ(sent.lp_mode, "auto");
    seeds_a.push_back(sent.seed);
  }

  FakeFleet shuffled;
  DispatchOptions shuffle_options;
  shuffle_options.workers = 1;
  shuffle_options.dispatch_order_seed = 0xC0FFEE;
  SweepDispatcher b(spec, shuffled.factory(/*log_sends=*/true), shuffle_options);
  const std::string bytes_b = masked_text(b.run());
  ASSERT_EQ(shuffled.sent_log.size(), 4u);
  std::vector<std::uint64_t> seeds_b;
  for (const auto& line : shuffled.sent_log)
    seeds_b.push_back(work_spec_from_text(line).seed);

  EXPECT_NE(seeds_a, seeds_b);  // the shuffle really reordered dispatch
  EXPECT_EQ(bytes_a, bytes_b);  // ...and the bytes never noticed
}

// The per-worker accounting that feeds the CI timing artifact: every
// completed task is attributed to exactly one slot, busy time is positive,
// and the obs registry mirror carries the same counts.
TEST(SweepDispatchTest, ReportAndRegistryCarryPerWorkerTiming) {
  const SweepSpec spec = tiny_spec();
  FakeFleet fleet;
  SweepDispatcher dispatcher(spec, fleet.factory(), DispatchOptions{.workers = 2});
  (void)dispatcher.run();

  const DispatchReport& report = dispatcher.report();
  ASSERT_EQ(report.workers.size(), 2u);
  int completed = 0;
  for (const auto& w : report.workers) {
    completed += w.tasks_completed;
    if (w.tasks_completed > 0) {
      EXPECT_GT(w.busy_seconds, 0.0);
    }
  }
  EXPECT_EQ(completed, 2);
  EXPECT_EQ(report.retries, 0);
  EXPECT_GT(report.seconds, 0.0);

  const obs::Registry& registry = dispatcher.registry();
  std::int64_t counted = 0;
  for (const auto& w : report.workers)
    counted += registry.counters()
                   .at("sweep.dispatch.worker." + std::to_string(w.worker) + ".tasks")
                   .value();
  EXPECT_EQ(counted, 2);
  EXPECT_EQ(registry.histograms().at("sweep.dispatch.task_seconds").total_count(), 2u);
}

// --- the protocol executes exactly what the runner executes ---------------

TEST(SweepDispatchTest, RunWorkSpecMatchesRunSweepTask) {
  const SweepSpec spec = tiny_spec();
  WorkSpec work;
  work.scenario = "steady-week";
  work.seed = spec.base_seed;
  work.spec = spec;

  PartialResult partial = run_work_spec(work);
  SweepTaskResult task = run_sweep_task(spec, work.scenario, work.seed);
  EXPECT_EQ(partial.scenario, work.scenario);
  EXPECT_EQ(partial.seed, work.seed);
  // Two independent executions: identical up to the wall-clock metrics.
  for (auto* records : {&partial.records, &task.records})
    for (RunRecord& run : *records)
      for (const std::size_t m : timing_metric_indices()) run.values[m] = 0.0;
  EXPECT_TRUE(partial.records == task.records);
  EXPECT_TRUE(partial.determinism_violations == task.determinism_violations);
  EXPECT_GT(partial.task_seconds, 0.0);
}

// --- real worker subprocesses (bench_sim_sweep --worker) ------------------

// The worker binary sits next to this test binary in the build directory.
std::string worker_binary() {
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof buf - 1);
  if (n <= 0) return "";
  buf[n] = '\0';
  std::string path(buf);
  const std::size_t slash = path.find_last_of('/');
  path = path.substr(0, slash) + "/bench_sim_sweep";
  return ::access(path.c_str(), X_OK) == 0 ? path : "";
}

// The merge audit: for every scenario in the library, distributed sweeps
// at 1, 2, and 4 worker processes — one of them with a shuffled dispatch
// order — serialize to the exact bytes the in-process SweepRunner
// produces, wall-clock metrics masked on both sides.
TEST(SweepDispatchE2ETest, DistributedSweepsAreByteIdenticalToInProcess) {
  const std::string binary = worker_binary();
  ASSERT_FALSE(binary.empty()) << "bench_sim_sweep not found next to the test binary";

  const SweepSpec spec = library_spec();  // whole library
  SweepResult reference_result = SweepRunner(spec).run();
  ASSERT_EQ(reference_result.aggregates.size(), sim::scenario_names().size());
  const std::string reference = masked_text(std::move(reference_result));

  const struct {
    int workers;
    std::uint64_t dispatch_order_seed;
  } cases[] = {{1, 0}, {2, 0xBEEF}, {4, 0}};
  for (const auto& c : cases) {
    DispatchOptions options;
    options.workers = c.workers;
    options.task_timeout_sec = 120.0;
    options.dispatch_order_seed = c.dispatch_order_seed;
    SweepDispatcher dispatcher(spec, process_worker_factory({binary, "--worker"}), options);
    const SweepResult result = dispatcher.run();
    EXPECT_EQ(masked_text(result), reference)
        << c.workers << " workers, shuffle seed " << c.dispatch_order_seed;
    const DispatchReport& report = dispatcher.report();
    EXPECT_EQ(report.retries, 0);
    int completed = 0;
    for (const auto& w : report.workers) completed += w.tasks_completed;
    EXPECT_EQ(completed, static_cast<int>(sim::scenario_names().size()));
  }
}

// Every --worker-fault mode of the real binary, chained on one slot: the
// faulty incarnations die (or get killed) one after another, each time the
// spec is re-dispatched, and the healthy respawn finishes the sweep with
// the in-process bytes.
TEST(SweepDispatchE2ETest, WorkerFaultChainIsRecoveredByteIdentically) {
  const std::string binary = worker_binary();
  ASSERT_FALSE(binary.empty()) << "bench_sim_sweep not found next to the test binary";

  const SweepSpec spec = tiny_spec();
  const std::string reference = masked_text(SweepRunner(spec).run());

  const std::vector<std::string> faults = {"die", "truncate", "corrupt", "bad-version"};
  auto spawned = std::make_shared<int>(0);
  WorkerFactory factory = [binary, faults, spawned]() -> std::unique_ptr<WorkerTransport> {
    const int n = (*spawned)++;
    std::vector<std::string> argv = {binary, "--worker"};
    if (n < static_cast<int>(faults.size())) {
      argv.push_back("--worker-fault");
      argv.push_back(faults[static_cast<std::size_t>(n)]);
    }
    return process_worker_factory(argv)();
  };

  DispatchOptions options;
  options.workers = 1;  // single slot: the fault chain is deterministic
  options.task_timeout_sec = 120.0;
  options.max_attempts = static_cast<int>(faults.size()) + 2;
  options.max_respawns = static_cast<int>(faults.size()) + 2;
  SweepDispatcher dispatcher(spec, factory, options);
  const SweepResult result = dispatcher.run();

  EXPECT_EQ(masked_text(result), reference);
  const DispatchReport& report = dispatcher.report();
  ASSERT_EQ(report.workers.size(), 1u);
  EXPECT_EQ(report.workers[0].faults, static_cast<int>(faults.size()));
  EXPECT_EQ(report.workers[0].respawns, static_cast<int>(faults.size()));
  EXPECT_EQ(report.workers[0].tasks_completed, 2);
  EXPECT_EQ(report.retries, static_cast<int>(faults.size()));
}

// A hung worker (answers nothing, forever) trips the per-task timeout, is
// SIGKILLed, and its task migrates to a fresh worker — the slow path of
// the fault model, with real wall time, so the budget is kept tight.
TEST(SweepDispatchE2ETest, HungWorkerIsKilledAfterTimeoutAndWorkMigrates) {
  const std::string binary = worker_binary();
  ASSERT_FALSE(binary.empty()) << "bench_sim_sweep not found next to the test binary";

  SweepSpec spec = tiny_spec();
  spec.num_seeds = 1;  // one task: exactly one timeout + one clean retry
  const std::string reference = masked_text(SweepRunner(spec).run());

  auto spawned = std::make_shared<int>(0);
  WorkerFactory factory = [binary, spawned]() -> std::unique_ptr<WorkerTransport> {
    const int n = (*spawned)++;
    std::vector<std::string> argv = {binary, "--worker"};
    if (n == 0) {
      argv.push_back("--worker-fault");
      argv.push_back("hang");
    }
    return process_worker_factory(argv)();
  };

  DispatchOptions options;
  options.workers = 1;
  options.task_timeout_sec = 15.0;  // > task cost, << the default 600
  SweepDispatcher dispatcher(spec, factory, options);
  const SweepResult result = dispatcher.run();

  EXPECT_EQ(masked_text(result), reference);
  ASSERT_EQ(dispatcher.report().workers.size(), 1u);
  EXPECT_EQ(dispatcher.report().workers[0].faults, 1);
  EXPECT_EQ(dispatcher.report().workers[0].tasks_completed, 1);
}

}  // namespace
}  // namespace titan::sweep
