// Tests for the closed-loop simulation subsystem: the event stream, the
// event queue, the sharded executor, the scenario library (including
// flash-crowd injection), per-slot metric sinks, and — the core guarantee —
// bit-identical results across worker-thread counts for a fixed seed.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "sim/engine.h"
#include "sim/executor.h"
#include "workload/event_stream.h"

namespace titan::sim {
namespace {

// A deliberately small scenario that still exercises the full loop:
// several replans, a fiber cut, and a DC drain inside two simulated days.
Scenario small_scenario() {
  Scenario s = make_scenario("steady-week");
  s.training_weeks = 2;
  s.eval_days = 1;
  s.peak_slot_calls = 40.0;
  s.shards = 8;
  s.oracle_counts = true;  // skip Holt-Winters; planning stays identical
  s.replan_interval_slots = 12;
  s.pipeline.scope.timeslots = 12;
  s.pipeline.scope.max_reduced_configs = 20;
  return s;
}

// --- event stream -------------------------------------------------------

TEST(EventStreamTest, SortedAndComplete) {
  const geo::World world = geo::World::make();
  workload::TraceOptions topts;
  topts.weeks = 1;
  topts.peak_slot_calls = 30.0;
  const auto trace = workload::TraceGenerator(world).generate(topts);
  const auto events = workload::build_event_stream(trace);

  ASSERT_EQ(events.size(), trace.calls().size() * 3);
  for (std::size_t i = 1; i < events.size(); ++i)
    EXPECT_FALSE(events[i] < events[i - 1]) << "stream not sorted at " << i;

  // Every call contributes one event of each kind; ends are clamped.
  std::vector<int> seen(trace.calls().size(), 0);
  for (const auto& e : events) {
    seen[e.call_index] |= 1 << static_cast<int>(e.kind);
    EXPECT_LE(e.slot, trace.num_slots());
    if (e.kind == workload::CallEventKind::kArrival)
      EXPECT_EQ(e.slot, trace.calls()[e.call_index].start_slot);
  }
  for (const int mask : seen) EXPECT_EQ(mask, 0b111);
}

TEST(EventStreamTest, EndOrdersBeforeArrivalInSameSlot) {
  const workload::CallEvent end{5, workload::CallEventKind::kEnd, 9};
  const workload::CallEvent arrival{5, workload::CallEventKind::kArrival, 1};
  const workload::CallEvent convergence{5, workload::CallEventKind::kConvergence, 0};
  EXPECT_LT(end, arrival);
  EXPECT_LT(arrival, convergence);

  EventQueue q;
  q.push(convergence);
  q.push(arrival);
  q.push(end);
  EXPECT_TRUE(q.due(5));
  EXPECT_EQ(q.pop().kind, workload::CallEventKind::kEnd);
  EXPECT_EQ(q.pop().kind, workload::CallEventKind::kArrival);
  EXPECT_EQ(q.pop().kind, workload::CallEventKind::kConvergence);
  EXPECT_TRUE(q.empty());
}

// --- executor -----------------------------------------------------------

TEST(ExecutorTest, RunsEveryShardExactlyOnce) {
  for (const int threads : {1, 3, 8}) {
    ShardedExecutor exec(16, threads);
    std::vector<std::atomic<int>> hits(16);
    for (auto& h : hits) h = 0;
    for (int round = 0; round < 3; ++round) {
      exec.run([&](int shard) { ++hits[static_cast<std::size_t>(shard)]; });
    }
    for (const auto& h : hits) EXPECT_EQ(h.load(), 3) << "threads=" << threads;
  }
}

TEST(ExecutorTest, ShardOfIsThreadCountIndependent) {
  // Pure function of (id, num_shards) — trivially, but pin the contract.
  for (std::int64_t id : {0LL, 1LL, 12345LL, 99999999LL}) {
    const int a = shard_of(core::CallId(id), 16);
    const int b = shard_of(core::CallId(id), 16);
    EXPECT_EQ(a, b);
    EXPECT_GE(a, 0);
    EXPECT_LT(a, 16);
  }
}

// --- scenario library ---------------------------------------------------

TEST(ScenarioTest, LibraryRoundTripsByName) {
  for (const auto& name : scenario_names()) {
    const Scenario s = make_scenario(name);
    EXPECT_EQ(s.name, name);
    EXPECT_GT(s.eval_days, 0);
    EXPECT_FALSE(s.description.empty());
  }
  EXPECT_THROW((void)make_scenario("no-such-scenario"), std::invalid_argument);
}

TEST(ScenarioTest, WeekendTransitionStartsOnFriday) {
  const Scenario s = make_scenario("weekend-transition");
  // The eval window starts eval_offset_days after a Monday.
  EXPECT_EQ(core::weekday_of(s.history_slots()), core::Weekday::kFriday);
}

TEST(ScenarioTest, FlashCrowdInjectsSurgeCalls) {
  Scenario s = make_scenario("flash-crowd");
  s.training_weeks = 1;
  s.eval_days = 2;
  s.peak_slot_calls = 60.0;
  const geo::World world = geo::World::make();

  Scenario calm = s;
  calm.surges.clear();
  const auto with = build_workload(s, world);
  const auto without = build_workload(calm, world);
  ASSERT_GT(with.eval.calls().size(), without.eval.calls().size());

  // Surge clones sit inside the window, in the surge country, and roughly
  // (factor - 1)x the matching originals.
  const auto& surge = s.surges.front();
  const auto region = world.find_country(surge.country);
  const int begin = surge.day * core::kSlotsPerDay + surge.begin_slot_in_day;
  const int end = surge.day * core::kSlotsPerDay + surge.end_slot_in_day;
  auto count_matching = [&](const workload::Trace& t) {
    std::size_t n = 0;
    for (const auto& c : t.calls())
      n += c.start_slot >= begin && c.start_slot < end && c.first_joiner == region;
    return n;
  };
  const auto base = count_matching(without.eval);
  const auto surged = count_matching(with.eval);
  ASSERT_GT(base, 0u);
  EXPECT_NEAR(static_cast<double>(surged), surge.factor * static_cast<double>(base),
              0.25 * surge.factor * static_cast<double>(base));
  // Everything outside the surge is untouched.
  EXPECT_EQ(with.eval.calls().size() - without.eval.calls().size(), surged - base);

  // Trace invariants survive assembly: the per-slot index matches.
  for (int slot = 0; slot < with.eval.num_slots(); ++slot)
    for (const auto idx : with.eval.calls_starting_in(slot))
      EXPECT_EQ(with.eval.calls()[idx].start_slot, slot);
}

// --- per-slot sink ------------------------------------------------------

TEST(SlotMetricsTest, WanUsageTakesPerDayPeaks) {
  eval::SlotMetricsSink sink(2 * core::kSlotsPerDay, 2);
  // Link 0: peak 10 on day 0, peak 4 on day 1. Link 1: flat 1 all along.
  sink.add_wan_mbps(3, core::LinkId(0), 10.0);
  sink.add_wan_mbps(50, core::LinkId(0), 4.0);
  for (int s = 0; s < 2 * core::kSlotsPerDay; ++s) sink.add_wan_mbps(s, core::LinkId(1), 1.0);
  const auto usage = sink.wan_usage();
  ASSERT_EQ(usage.per_day_sum_of_peaks_mbps.size(), 2u);
  EXPECT_DOUBLE_EQ(usage.per_day_sum_of_peaks_mbps[0], 11.0);
  EXPECT_DOUBLE_EQ(usage.per_day_sum_of_peaks_mbps[1], 5.0);
  EXPECT_DOUBLE_EQ(usage.sum_of_peaks_mbps, 11.0);
  EXPECT_DOUBLE_EQ(sink.link_peak_mbps(core::LinkId(0)), 10.0);
}

TEST(SlotMetricsTest, MergeIsElementwise) {
  eval::SlotMetricsSink a(4, 1), b(4, 1);
  a.add_arrival(0);
  a.add_participants(0, 1, 2);
  b.add_arrival(0);
  b.add_participants(0, 1, 2);
  b.add_mos(2, 4.0);
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.arrivals()[0], 2.0);
  EXPECT_DOUBLE_EQ(a.internet_share_per_slot()[0], 0.5);
  EXPECT_DOUBLE_EQ(a.mean_mos_per_slot()[2], 4.0);
}

// --- the core guarantee: thread-count determinism -----------------------

TEST(SimDeterminismTest, IdenticalResultsAtOneTwoAndEightThreads) {
  SimEngine engine(small_scenario());
  const auto r1 = engine.run(1);
  const auto r2 = engine.run(2);
  const auto r8 = engine.run(8);

  for (const auto* r : {&r2, &r8}) {
    EXPECT_EQ(r->checksum, r1.checksum);
    EXPECT_EQ(r->calls, r1.calls);
    EXPECT_EQ(r->dc_migrations, r1.dc_migrations);
    EXPECT_EQ(r->route_changes, r1.route_changes);
    EXPECT_EQ(r->out_of_plan, r1.out_of_plan);
    EXPECT_EQ(r->fallback_assignments, r1.fallback_assignments);
    // Bit-identical floating-point aggregates, not just "close".
    EXPECT_EQ(r->wan.sum_of_peaks_mbps, r1.wan.sum_of_peaks_mbps);
    EXPECT_EQ(r->wan.total_traffic_gb, r1.wan.total_traffic_gb);
    EXPECT_EQ(r->internet_share, r1.internet_share);
    EXPECT_EQ(r->mean_mos, r1.mean_mos);
    const auto wan1 = r1.streams.wan_total_mbps_per_slot();
    const auto wanN = r->streams.wan_total_mbps_per_slot();
    EXPECT_EQ(wanN, wan1);
  }
  EXPECT_GT(r1.calls, 0);
  EXPECT_GT(r1.replans, 1);
}

TEST(SimDeterminismTest, DisturbedScenarioIsAlsoThreadCountInvariant) {
  Scenario s = small_scenario();
  s.name = "disturbed-small";
  Disturbance cut;
  cut.kind = NetworkEventKind::kFiberCut;
  cut.day = 0;
  cut.slot_in_day = 18;
  cut.country = "france";
  cut.dc = "netherlands";
  s.disturbances.push_back(cut);
  Disturbance drain;
  drain.kind = NetworkEventKind::kDcDrain;
  drain.day = 0;
  drain.slot_in_day = 22;
  drain.dc = "netherlands";
  s.disturbances.push_back(drain);

  SimEngine engine(s);
  const auto r1 = engine.run(1);
  const auto r8 = engine.run(8);
  EXPECT_EQ(r1.checksum, r8.checksum);
  EXPECT_EQ(r1.wan.sum_of_peaks_mbps, r8.wan.sum_of_peaks_mbps);
  EXPECT_EQ(r1.forced_migrations, r8.forced_migrations);
  ASSERT_EQ(r1.severed_links.size(), 1u);
}

TEST(SimDeterminismTest, RunsAreRepeatable) {
  // The same engine run twice resets all mutable state (network, plans).
  SimEngine engine(small_scenario());
  const auto a = engine.run(2);
  const auto b = engine.run(2);
  EXPECT_EQ(a.checksum, b.checksum);
  EXPECT_EQ(a.wan.sum_of_peaks_mbps, b.wan.sum_of_peaks_mbps);
}

// --- closed-loop behaviour ----------------------------------------------

TEST(SimEngineTest, SteadyScenarioProducesSaneMetrics) {
  SimEngine engine(small_scenario());
  const auto r = engine.run(2);
  EXPECT_EQ(r.calls, static_cast<std::int64_t>(engine.eval_trace().calls().size()));
  EXPECT_EQ(r.replans, 4);  // 48 slots / 12-slot interval
  EXPECT_GT(r.wan.sum_of_peaks_mbps, 0.0);
  EXPECT_GT(r.internet_share, 0.0);
  EXPECT_LT(r.internet_share, 0.6);
  EXPECT_GE(r.mean_mos, 1.0);
  EXPECT_LE(r.mean_mos, 5.0);
  // Streams cover every slot; arrivals total the call count.
  const double arrivals = std::accumulate(r.streams.arrivals().begin(),
                                          r.streams.arrivals().end(), 0.0);
  EXPECT_EQ(static_cast<std::int64_t>(arrivals), r.calls);
}

TEST(SimEngineTest, FiberCutSilencesTheSeveredLink) {
  Scenario s = small_scenario();
  s.name = "cut-small";
  Disturbance cut;
  cut.kind = NetworkEventKind::kFiberCut;
  cut.day = 0;
  cut.slot_in_day = 20;
  cut.country = "france";
  cut.dc = "netherlands";
  s.disturbances.push_back(cut);

  SimEngine engine(s);
  const auto r = engine.run(2);
  ASSERT_EQ(r.severed_links.size(), 1u);
  const auto [cut_slot, link] = r.severed_links.front();
  EXPECT_EQ(cut_slot, 20);
  // Rerouting + evacuation: no WAN traffic rides the dead fiber afterwards.
  for (int slot = cut_slot + 1; slot < r.eval_slots; ++slot)
    EXPECT_EQ(r.streams.link_mbps_at(slot, link), 0.0) << "slot " << slot;
}

TEST(SimEngineTest, FiberCutSurgesInternetFractionsOfAffectedPairs) {
  Scenario s = small_scenario();
  s.name = "cut-surge-small";
  // A longer post-cut window than the other small tests, so the surged
  // offload dominates noise.
  s.eval_days = 2;
  s.peak_slot_calls = 60.0;
  s.replan_interval_slots = 24;
  s.pipeline.scope.timeslots = 24;
  Disturbance cut;
  cut.kind = NetworkEventKind::kFiberCut;
  cut.day = 0;
  cut.slot_in_day = 18;
  cut.country = "france";
  cut.dc = "netherlands";
  s.disturbances.push_back(cut);

  // With the emergency surge neutralized (surge == calm cap) the loop must
  // offload strictly less than with the real surge response.
  Scenario no_surge = s;
  no_surge.fiber_cut_surge_fraction = no_surge.titan_fraction_cap;
  const auto with = SimEngine(s).run(2);
  const auto without = SimEngine(no_surge).run(2);
  EXPECT_GT(with.internet_share, without.internet_share);
}

TEST(SimEngineTest, ForecastBiasChangesPlansCoveringItsWindow) {
  Scenario s = small_scenario();
  s.name = "bias-small";
  Disturbance bias;
  bias.kind = NetworkEventKind::kForecastBias;
  bias.day = 0;
  bias.slot_in_day = 18;
  bias.duration_slots = 6;
  bias.magnitude = 0.5;
  s.disturbances.push_back(bias);
  s.oracle_counts = true;  // bias applies to oracle counts too

  Scenario unbiased = s;
  unbiased.disturbances.clear();
  const auto with = SimEngine(s).run(2);
  const auto without = SimEngine(unbiased).run(2);
  // Under-forecasting the window must change the plans and hence decisions.
  EXPECT_NE(with.checksum, without.checksum);
}

TEST(SimEngineTest, DcDrainEvacuatesActiveCalls) {
  Scenario s = small_scenario();
  s.name = "drain-small";
  s.peak_slot_calls = 60.0;
  Disturbance drain;
  drain.kind = NetworkEventKind::kDcDrain;
  drain.day = 0;
  drain.slot_in_day = 21;  // mid business morning: calls are in flight
  drain.dc = "netherlands";
  s.disturbances.push_back(drain);

  SimEngine engine(s);
  const auto r = engine.run(2);
  EXPECT_GT(r.forced_migrations, 0);
}

TEST(SimEngineTest, DrainWindowRestoresTheDc) {
  Scenario s = small_scenario();
  s.name = "drain-window-small";
  s.peak_slot_calls = 60.0;
  Disturbance drain;
  drain.kind = NetworkEventKind::kDcDrain;
  drain.day = 0;
  drain.slot_in_day = 18;
  drain.duration_slots = 6;  // a 3-hour maintenance window
  drain.dc = "netherlands";
  s.disturbances.push_back(drain);

  Scenario open_ended = s;
  open_ended.disturbances[0].duration_slots = -1;
  const auto windowed = SimEngine(s).run(2);
  const auto permanent = SimEngine(open_ended).run(2);
  // The restored DC serves again: the closed window must diverge from the
  // permanent drain.
  EXPECT_NE(windowed.checksum, permanent.checksum);
}

TEST(SimEngineTest, LinkDisturbanceWindowsAreRejected) {
  Scenario s = small_scenario();
  Disturbance cut;
  cut.kind = NetworkEventKind::kFiberCut;
  cut.country = "france";
  cut.dc = "netherlands";
  cut.duration_slots = 8;  // fiber does not heal within a sim
  s.disturbances.push_back(cut);
  EXPECT_THROW(SimEngine engine(s), std::invalid_argument);
}

}  // namespace
}  // namespace titan::sim
