// Tests for the closed-loop simulation subsystem: the event stream, the
// event queue, the sharded executor, the scenario library (including
// flash-crowd injection), per-slot metric sinks, and — the core guarantee —
// bit-identical results across worker-thread counts for a fixed seed.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdio>
#include <numeric>
#include <set>

#include "sim/engine.h"
#include "sim/executor.h"
#include "workload/event_stream.h"

namespace titan::sim {
namespace {

// A deliberately small scenario that still exercises the full loop:
// several replans, a fiber cut, and a DC drain inside two simulated days.
Scenario small_scenario() {
  Scenario s = make_scenario("steady-week");
  s.training_weeks = 2;
  s.eval_days = 1;
  s.peak_slot_calls = 40.0;
  s.shards = 8;
  s.oracle_counts = true;  // skip Holt-Winters; planning stays identical
  s.replan_interval_slots = 12;
  s.pipeline.scope.timeslots = 12;
  s.pipeline.scope.max_reduced_configs = 20;
  return s;
}

// --- event stream -------------------------------------------------------

TEST(EventStreamTest, SortedAndComplete) {
  const geo::World world = geo::World::make();
  workload::TraceOptions topts;
  topts.weeks = 1;
  topts.peak_slot_calls = 30.0;
  const auto trace = workload::TraceGenerator(world).generate(topts);
  const auto events = workload::build_event_stream(trace);

  ASSERT_EQ(events.size(), trace.calls().size() * 3);
  for (std::size_t i = 1; i < events.size(); ++i)
    EXPECT_FALSE(events[i] < events[i - 1]) << "stream not sorted at " << i;

  // Every call contributes one event of each kind; ends are clamped.
  std::vector<int> seen(trace.calls().size(), 0);
  for (const auto& e : events) {
    seen[e.call_index] |= 1 << static_cast<int>(e.kind);
    EXPECT_LE(e.slot, trace.num_slots());
    if (e.kind == workload::CallEventKind::kArrival)
      EXPECT_EQ(e.slot, trace.calls()[e.call_index].start_slot);
  }
  for (const int mask : seen) EXPECT_EQ(mask, 0b111);
}

TEST(EventStreamTest, EndOrdersBeforeArrivalInSameSlot) {
  const workload::CallEvent end{5, workload::CallEventKind::kEnd, 9};
  const workload::CallEvent arrival{5, workload::CallEventKind::kArrival, 1};
  const workload::CallEvent convergence{5, workload::CallEventKind::kConvergence, 0};
  EXPECT_LT(end, arrival);
  EXPECT_LT(arrival, convergence);

  EventQueue q;
  q.push(convergence);
  q.push(arrival);
  q.push(end);
  EXPECT_TRUE(q.due(5));
  EXPECT_EQ(q.pop().kind, workload::CallEventKind::kEnd);
  EXPECT_EQ(q.pop().kind, workload::CallEventKind::kArrival);
  EXPECT_EQ(q.pop().kind, workload::CallEventKind::kConvergence);
  EXPECT_TRUE(q.empty());
}

TEST(EventStreamTest, ConvergenceDelayDefersConvergence) {
  const geo::World world = geo::World::make();
  workload::TraceOptions topts;
  topts.weeks = 1;
  topts.peak_slot_calls = 30.0;
  const auto trace = workload::TraceGenerator(world).generate(topts);
  const auto events = workload::build_event_stream(trace, 2);

  for (std::size_t i = 1; i < events.size(); ++i)
    EXPECT_FALSE(events[i] < events[i - 1]) << "stream not sorted at " << i;
  for (const auto& e : events) {
    if (e.kind != workload::CallEventKind::kConvergence) continue;
    const auto& call = trace.calls()[e.call_index];
    EXPECT_EQ(e.slot, std::min(call.start_slot + 2, trace.num_slots()));
  }
}

// --- executor -----------------------------------------------------------

TEST(ExecutorTest, RunsEveryShardExactlyOnce) {
  for (const int threads : {1, 3, 8}) {
    ShardedExecutor exec(16, threads);
    std::vector<std::atomic<int>> hits(16);
    for (auto& h : hits) h = 0;
    for (int round = 0; round < 3; ++round) {
      exec.run([&](int shard) { ++hits[static_cast<std::size_t>(shard)]; });
    }
    for (const auto& h : hits) EXPECT_EQ(h.load(), 3) << "threads=" << threads;
  }
}

TEST(ExecutorTest, ShardOfIsThreadCountIndependent) {
  // Pure function of (id, num_shards) — trivially, but pin the contract.
  for (std::int64_t id : {0LL, 1LL, 12345LL, 99999999LL}) {
    const int a = shard_of(core::CallId(id), 16);
    const int b = shard_of(core::CallId(id), 16);
    EXPECT_EQ(a, b);
    EXPECT_GE(a, 0);
    EXPECT_LT(a, 16);
  }
}

// --- scenario library ---------------------------------------------------

TEST(ScenarioTest, LibraryRoundTripsByName) {
  for (const auto& name : scenario_names()) {
    const Scenario s = make_scenario(name);
    EXPECT_EQ(s.name, name);
    EXPECT_GT(s.eval_days, 0);
    EXPECT_FALSE(s.description.empty());
  }
  EXPECT_THROW((void)make_scenario("no-such-scenario"), std::invalid_argument);
}

TEST(ScenarioTest, WeekendTransitionStartsOnFriday) {
  const Scenario s = make_scenario("weekend-transition");
  // The eval window starts eval_offset_days after a Monday.
  EXPECT_EQ(core::weekday_of(s.history_slots()), core::Weekday::kFriday);
}

TEST(ScenarioTest, FlashCrowdInjectsSurgeCalls) {
  Scenario s = make_scenario("flash-crowd");
  s.training_weeks = 1;
  s.eval_days = 2;
  s.peak_slot_calls = 60.0;
  const geo::World world = geo::World::make();

  Scenario calm = s;
  calm.surges.clear();
  const auto with = build_workload(s, world);
  const auto without = build_workload(calm, world);
  ASSERT_GT(with.eval.calls().size(), without.eval.calls().size());

  // Surge clones sit inside the window, in the surge country, and roughly
  // (factor - 1)x the matching originals.
  const auto& surge = s.surges.front();
  const auto region = world.find_country(surge.country);
  const int begin = surge.day * core::kSlotsPerDay + surge.begin_slot_in_day;
  const int end = surge.day * core::kSlotsPerDay + surge.end_slot_in_day;
  auto count_matching = [&](const workload::Trace& t) {
    std::size_t n = 0;
    for (const auto& c : t.calls())
      n += c.start_slot >= begin && c.start_slot < end && c.first_joiner == region;
    return n;
  };
  const auto base = count_matching(without.eval);
  const auto surged = count_matching(with.eval);
  ASSERT_GT(base, 0u);
  EXPECT_NEAR(static_cast<double>(surged), surge.factor * static_cast<double>(base),
              0.25 * surge.factor * static_cast<double>(base));
  // Everything outside the surge is untouched.
  EXPECT_EQ(with.eval.calls().size() - without.eval.calls().size(), surged - base);

  // Trace invariants survive assembly: the per-slot index matches.
  for (int slot = 0; slot < with.eval.num_slots(); ++slot)
    for (const auto idx : with.eval.calls_starting_in(slot))
      EXPECT_EQ(with.eval.calls()[idx].start_slot, slot);
}

// --- per-slot sink ------------------------------------------------------

TEST(SlotMetricsTest, WanUsageTakesPerDayPeaks) {
  eval::SlotMetricsSink sink(2 * core::kSlotsPerDay, 2);
  // Link 0: peak 10 on day 0, peak 4 on day 1. Link 1: flat 1 all along.
  sink.add_wan_mbps(3, core::LinkId(0), 10.0);
  sink.add_wan_mbps(50, core::LinkId(0), 4.0);
  for (int s = 0; s < 2 * core::kSlotsPerDay; ++s) sink.add_wan_mbps(s, core::LinkId(1), 1.0);
  const auto usage = sink.wan_usage();
  ASSERT_EQ(usage.per_day_sum_of_peaks_mbps.size(), 2u);
  EXPECT_DOUBLE_EQ(usage.per_day_sum_of_peaks_mbps[0], 11.0);
  EXPECT_DOUBLE_EQ(usage.per_day_sum_of_peaks_mbps[1], 5.0);
  EXPECT_DOUBLE_EQ(usage.sum_of_peaks_mbps, 11.0);
  EXPECT_DOUBLE_EQ(sink.link_peak_mbps(core::LinkId(0)), 10.0);
}

TEST(SlotMetricsTest, MergeIsElementwise) {
  eval::SlotMetricsSink a(4, 1), b(4, 1);
  a.add_arrival(0);
  a.add_participants(0, 1, 2);
  b.add_arrival(0);
  b.add_participants(0, 1, 2);
  b.add_mos(2, 4.0);
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.arrivals()[0], 2.0);
  EXPECT_DOUBLE_EQ(a.internet_share_per_slot()[0], 0.5);
  EXPECT_DOUBLE_EQ(a.mean_mos_per_slot()[2], 4.0);
}

// --- the core guarantee: thread-count determinism -----------------------

TEST(SimDeterminismTest, IdenticalResultsAtOneTwoAndEightThreads) {
  SimEngine engine(small_scenario());
  const auto r1 = engine.run(1);
  const auto r2 = engine.run(2);
  const auto r8 = engine.run(8);

  for (const auto* r : {&r2, &r8}) {
    EXPECT_EQ(r->checksum, r1.checksum);
    EXPECT_EQ(r->calls, r1.calls);
    EXPECT_EQ(r->dc_migrations, r1.dc_migrations);
    EXPECT_EQ(r->route_changes, r1.route_changes);
    EXPECT_EQ(r->out_of_plan, r1.out_of_plan);
    EXPECT_EQ(r->fallback_assignments, r1.fallback_assignments);
    // Bit-identical floating-point aggregates, not just "close".
    EXPECT_EQ(r->wan.sum_of_peaks_mbps, r1.wan.sum_of_peaks_mbps);
    EXPECT_EQ(r->wan.total_traffic_gb, r1.wan.total_traffic_gb);
    EXPECT_EQ(r->internet_share, r1.internet_share);
    EXPECT_EQ(r->mean_mos, r1.mean_mos);
    const auto wan1 = r1.streams.wan_total_mbps_per_slot();
    const auto wanN = r->streams.wan_total_mbps_per_slot();
    EXPECT_EQ(wanN, wan1);
  }
  EXPECT_GT(r1.calls, 0);
  EXPECT_GT(r1.replans, 1);
}

TEST(SimDeterminismTest, DisturbedScenarioIsAlsoThreadCountInvariant) {
  Scenario s = small_scenario();
  s.name = "disturbed-small";
  Disturbance cut;
  cut.kind = NetworkEventKind::kFiberCut;
  cut.day = 0;
  cut.slot_in_day = 18;
  cut.country = "france";
  cut.dc = "netherlands";
  s.disturbances.push_back(cut);
  Disturbance drain;
  drain.kind = NetworkEventKind::kDcDrain;
  drain.day = 0;
  drain.slot_in_day = 22;
  drain.dc = "netherlands";
  s.disturbances.push_back(drain);

  SimEngine engine(s);
  const auto r1 = engine.run(1);
  const auto r8 = engine.run(8);
  EXPECT_EQ(r1.checksum, r8.checksum);
  EXPECT_EQ(r1.wan.sum_of_peaks_mbps, r8.wan.sum_of_peaks_mbps);
  EXPECT_EQ(r1.forced_migrations, r8.forced_migrations);
  ASSERT_EQ(r1.severed_links.size(), 1u);
}

TEST(SimDeterminismTest, RunsAreRepeatable) {
  // The same engine run twice resets all mutable state (network, plans).
  SimEngine engine(small_scenario());
  const auto a = engine.run(2);
  const auto b = engine.run(2);
  EXPECT_EQ(a.checksum, b.checksum);
  EXPECT_EQ(a.wan.sum_of_peaks_mbps, b.wan.sum_of_peaks_mbps);
}

// --- closed-loop behaviour ----------------------------------------------

TEST(SimEngineTest, SteadyScenarioProducesSaneMetrics) {
  SimEngine engine(small_scenario());
  const auto r = engine.run(2);
  EXPECT_EQ(r.calls, static_cast<std::int64_t>(engine.eval_trace().calls().size()));
  EXPECT_EQ(r.replans, 4);  // 48 slots / 12-slot interval
  EXPECT_GT(r.wan.sum_of_peaks_mbps, 0.0);
  EXPECT_GT(r.internet_share, 0.0);
  EXPECT_LT(r.internet_share, 0.6);
  EXPECT_GE(r.mean_mos, 1.0);
  EXPECT_LE(r.mean_mos, 5.0);
  // Streams cover every slot; arrivals total the call count.
  const double arrivals = std::accumulate(r.streams.arrivals().begin(),
                                          r.streams.arrivals().end(), 0.0);
  EXPECT_EQ(static_cast<std::int64_t>(arrivals), r.calls);
}

TEST(SimEngineTest, FiberCutSilencesTheSeveredLink) {
  Scenario s = small_scenario();
  s.name = "cut-small";
  Disturbance cut;
  cut.kind = NetworkEventKind::kFiberCut;
  cut.day = 0;
  cut.slot_in_day = 20;
  cut.country = "france";
  cut.dc = "netherlands";
  s.disturbances.push_back(cut);

  SimEngine engine(s);
  const auto r = engine.run(2);
  ASSERT_EQ(r.severed_links.size(), 1u);
  const auto [cut_slot, link] = r.severed_links.front();
  EXPECT_EQ(cut_slot, 20);
  // Rerouting + evacuation: no WAN traffic rides the dead fiber afterwards.
  for (int slot = cut_slot + 1; slot < r.eval_slots; ++slot)
    EXPECT_EQ(r.streams.link_mbps_at(slot, link), 0.0) << "slot " << slot;
}

TEST(SimEngineTest, FiberCutSurgesInternetFractionsOfAffectedPairs) {
  Scenario s = small_scenario();
  s.name = "cut-surge-small";
  // A longer post-cut window than the other small tests, so the surged
  // offload dominates noise.
  s.eval_days = 2;
  s.peak_slot_calls = 60.0;
  s.replan_interval_slots = 24;
  s.pipeline.scope.timeslots = 24;
  Disturbance cut;
  cut.kind = NetworkEventKind::kFiberCut;
  cut.day = 0;
  cut.slot_in_day = 18;
  cut.country = "france";
  cut.dc = "netherlands";
  s.disturbances.push_back(cut);

  // With the emergency surge neutralized (surge == calm cap) the loop must
  // offload strictly less than with the real surge response.
  Scenario no_surge = s;
  no_surge.fiber_cut_surge_fraction = no_surge.titan_fraction_cap;
  const auto with = SimEngine(s).run(2);
  const auto without = SimEngine(no_surge).run(2);
  EXPECT_GT(with.internet_share, without.internet_share);
}

TEST(SimEngineTest, ForecastBiasChangesPlansCoveringItsWindow) {
  Scenario s = small_scenario();
  s.name = "bias-small";
  Disturbance bias;
  bias.kind = NetworkEventKind::kForecastBias;
  bias.day = 0;
  bias.slot_in_day = 18;
  bias.duration_slots = 6;
  bias.magnitude = 0.5;
  s.disturbances.push_back(bias);
  s.oracle_counts = true;  // bias applies to oracle counts too

  Scenario unbiased = s;
  unbiased.disturbances.clear();
  const auto with = SimEngine(s).run(2);
  const auto without = SimEngine(unbiased).run(2);
  // Under-forecasting the window must change the plans and hence decisions.
  EXPECT_NE(with.checksum, without.checksum);
}

TEST(SimEngineTest, DcDrainEvacuatesActiveCalls) {
  Scenario s = small_scenario();
  s.name = "drain-small";
  s.peak_slot_calls = 60.0;
  Disturbance drain;
  drain.kind = NetworkEventKind::kDcDrain;
  drain.day = 0;
  drain.slot_in_day = 21;  // mid business morning: calls are in flight
  drain.dc = "netherlands";
  s.disturbances.push_back(drain);

  SimEngine engine(s);
  const auto r = engine.run(2);
  EXPECT_GT(r.forced_migrations, 0);
}

TEST(SimEngineTest, DrainWindowRestoresTheDc) {
  Scenario s = small_scenario();
  s.name = "drain-window-small";
  s.peak_slot_calls = 60.0;
  Disturbance drain;
  drain.kind = NetworkEventKind::kDcDrain;
  drain.day = 0;
  drain.slot_in_day = 18;
  drain.duration_slots = 6;  // a 3-hour maintenance window
  drain.dc = "netherlands";
  s.disturbances.push_back(drain);

  Scenario open_ended = s;
  open_ended.disturbances[0].duration_slots = -1;
  const auto windowed = SimEngine(s).run(2);
  const auto permanent = SimEngine(open_ended).run(2);
  // The restored DC serves again: the closed window must diverge from the
  // permanent drain.
  EXPECT_NE(windowed.checksum, permanent.checksum);
}

TEST(SimEngineTest, LinkDisturbanceWindowsAreRejected) {
  Scenario s = small_scenario();
  Disturbance cut;
  cut.kind = NetworkEventKind::kFiberCut;
  cut.country = "france";
  cut.dc = "netherlands";
  cut.duration_slots = 8;  // fiber does not heal within a sim
  s.disturbances.push_back(cut);
  EXPECT_THROW(SimEngine engine(s), std::invalid_argument);
}

TEST(SimEngineTest, MalformedDisturbancesAreRejected) {
  {
    Scenario s = small_scenario();
    Disturbance d;
    d.kind = NetworkEventKind::kTransitDegrade;
    d.country = "france";  // no dc: nothing to resolve the transit against
    d.magnitude = 0.03;
    s.disturbances.push_back(d);
    EXPECT_THROW(SimEngine engine(s), std::invalid_argument);
  }
  {
    Scenario s = small_scenario();
    Disturbance d;
    d.kind = NetworkEventKind::kTransitDegrade;
    d.dc = "netherlands";
    d.magnitude = 0.0;  // a degrade that adds no loss is a no-op, reject it
    s.disturbances.push_back(d);
    EXPECT_THROW(SimEngine engine(s), std::invalid_argument);
  }
  {
    Scenario s = small_scenario();
    Disturbance d;
    d.kind = NetworkEventKind::kDcDrain;
    d.dc = "netherlands";
    d.magnitude = 1.5;  // drains shrink capacity; >= 1 is not a drain
    s.disturbances.push_back(d);
    EXPECT_THROW(SimEngine engine(s), std::invalid_argument);
  }
  {
    Scenario s = small_scenario();
    Disturbance d;
    d.kind = NetworkEventKind::kDcDrain;  // no dc: nothing to drain
    d.magnitude = 0.5;
    s.disturbances.push_back(d);
    EXPECT_THROW(SimEngine engine(s), std::invalid_argument);
  }
  {
    Scenario s = small_scenario();
    Disturbance d;
    d.kind = NetworkEventKind::kFiberCut;  // no country/dc: no path to cut
    s.disturbances.push_back(d);
    EXPECT_THROW(SimEngine engine(s), std::invalid_argument);
  }
}

// Windowed disturbances synthesize a restore event that resets the target
// outright, so two overlapping windows on one target would cancel each
// other mid-flight; the engine rejects them. Disjoint windows (rolling
// maintenance) and overlaps on different targets stay legal.
TEST(SimEngineTest, OverlappingWindowsOnOneTargetAreRejected) {
  auto drain = [](int slot, int duration, const char* dc, double magnitude) {
    Disturbance d;
    d.kind = NetworkEventKind::kDcDrain;
    d.slot_in_day = slot;
    d.duration_slots = duration;
    d.dc = dc;
    d.magnitude = magnitude;
    return d;
  };
  {
    Scenario s = small_scenario();
    s.disturbances = {drain(10, 10, "netherlands", 0.5), drain(15, 10, "netherlands", 0.5)};
    EXPECT_THROW(SimEngine engine(s), std::invalid_argument);
  }
  {
    Scenario s = small_scenario();  // open-ended, then windowed on the same DC
    s.disturbances = {drain(10, -1, "netherlands", 0.0), drain(20, 5, "netherlands", 0.5)};
    EXPECT_THROW(SimEngine engine(s), std::invalid_argument);
  }
  {
    Scenario s = small_scenario();  // same slots, different DCs: fine
    s.disturbances = {drain(10, 10, "netherlands", 0.5), drain(15, 10, "ireland", 0.5)};
    SimEngine engine(s);
    EXPECT_EQ(engine.run(2).leaked_calls, 0);
  }
  {
    Scenario s = small_scenario();  // two degrades of one (country, dc) transit
    Disturbance d;
    d.kind = NetworkEventKind::kTransitDegrade;
    d.slot_in_day = 10;
    d.duration_slots = 10;
    d.country = "france";
    d.dc = "netherlands";
    d.magnitude = 0.03;
    s.disturbances.push_back(d);
    d.slot_in_day = 15;
    s.disturbances.push_back(d);
    EXPECT_THROW(SimEngine engine(s), std::invalid_argument);
  }
  EXPECT_NO_THROW(SimEngine engine(make_scenario("rolling-maintenance")));
}

// --- call-lifecycle regressions -----------------------------------------

// With a one-slot convergence delay, every one-slot call (the majority
// shape) has its kEnd and kConvergence due in the same slot — and kEnd
// orders first. The convergence handler must treat the erased pending
// entry as "call already over", not dereference pending.end() and
// resurrect the call into the active set, where it would accrue WAN and
// Internet usage forever.
TEST(SimLifecycleTest, SameSlotEndAndConvergenceDoesNotResurrect) {
  Scenario s = small_scenario();
  s.name = "same-slot-end-conv";
  s.convergence_delay_slots = 1;

  SimEngine engine(s);
  const auto r1 = engine.run(1);
  const auto r8 = engine.run(8);
  EXPECT_EQ(r1.leaked_calls, 0);
  EXPECT_EQ(r8.leaked_calls, 0);
  EXPECT_EQ(r1.checksum, r8.checksum);
  EXPECT_GT(r1.calls, 0);
  // Two-slot calls still converge and carry media for their second slot.
  EXPECT_GT(r1.wan.sum_of_peaks_mbps, 0.0);
}

// A delay longer than every call duration means each call ends while still
// pending: nothing may ever graduate to the active set, so no usage, no
// migrations, no leaks.
TEST(SimLifecycleTest, CallsEndingWhilePendingNeverActivate) {
  Scenario s = small_scenario();
  s.name = "end-before-convergence";
  s.convergence_delay_slots = 3;  // generated calls last 1 or 2 slots

  SimEngine engine(s);
  const auto r = engine.run(2);
  EXPECT_GT(r.calls, 0);
  EXPECT_EQ(r.leaked_calls, 0);
  EXPECT_EQ(r.dc_migrations, 0);
  EXPECT_EQ(r.route_changes, 0);
  EXPECT_EQ(r.wan.sum_of_peaks_mbps, 0.0);
  EXPECT_EQ(r.internet_share, 0.0);
}

// A drain injected between arrival and convergence: with the convergence
// delay pushed past the eval window, the active set stays empty for the
// whole run, so any forced migration can only come from the evacuation
// wave walking the *pending* set. (Before the fix, pending calls kept
// initial assignments pointing at the drained DC.)
TEST(SimLifecycleTest, PendingCallsEvacuateOnDrain) {
  Scenario s = small_scenario();
  s.name = "pending-evacuation";
  s.peak_slot_calls = 80.0;
  s.convergence_delay_slots = 10000;  // nobody converges inside the window
  Disturbance drain;
  drain.kind = NetworkEventKind::kDcDrain;
  drain.day = 0;
  drain.slot_in_day = 21;  // mid business morning: arrivals are in flight
  drain.dc = "netherlands";
  s.disturbances.push_back(drain);

  SimEngine engine(s);
  const auto r1 = engine.run(1);
  const auto r8 = engine.run(8);
  EXPECT_GT(r1.forced_migrations, 0);
  EXPECT_EQ(r1.leaked_calls, 0);
  EXPECT_EQ(r1.checksum, r8.checksum);
  EXPECT_EQ(r1.forced_migrations, r8.forced_migrations);
  // Evacuations happen at (or after) the drain slot, never before.
  const auto& stream = r1.streams.forced_migrations();
  for (int slot = 0; slot < 21; ++slot) EXPECT_EQ(stream[static_cast<std::size_t>(slot)], 0.0);
}

// --- overlapping surges -------------------------------------------------

// Two identical overlapping surges must make independent fractional-clone
// decisions. With the surge index missing from the RNG key, both surges
// clone exactly the same subset, so per-slot extra volume is exactly twice
// a single surge's — detectably wrong for a x1.5 surge where each draw is
// a fair coin per call.
TEST(ScenarioTest, OverlappingSurgesCloneIndependently) {
  Scenario base = make_scenario("steady-week");
  base.training_weeks = 1;
  base.eval_days = 2;
  base.peak_slot_calls = 60.0;
  SurgeSpec surge;
  surge.day = 1;
  surge.begin_slot_in_day = 18;
  surge.end_slot_in_day = 26;
  surge.country = "france";
  surge.factor = 1.5;  // fractional: clone with probability one-half

  Scenario one = base;
  one.surges.push_back(surge);
  Scenario two = base;
  two.surges.push_back(surge);
  two.surges.push_back(surge);

  const geo::World world = geo::World::make();
  const auto base_wl = build_workload(base, world);
  const auto one_wl = build_workload(one, world);
  const auto two_wl = build_workload(two, world);

  const auto region = world.find_country(surge.country);
  const int begin = surge.day * core::kSlotsPerDay + surge.begin_slot_in_day;
  const int end = surge.day * core::kSlotsPerDay + surge.end_slot_in_day;
  auto per_slot = [&](const workload::Trace& t) {
    std::vector<int> counts(static_cast<std::size_t>(end - begin), 0);
    for (const auto& c : t.calls())
      if (c.start_slot >= begin && c.start_slot < end && c.first_joiner == region)
        ++counts[static_cast<std::size_t>(c.start_slot - begin)];
    return counts;
  };
  const auto calm = per_slot(base_wl.eval);
  const auto once = per_slot(one_wl.eval);
  const auto twice = per_slot(two_wl.eval);

  // Both runs add surge volume in the window.
  int calm_total = 0, once_extra = 0, twice_extra = 0;
  for (std::size_t i = 0; i < calm.size(); ++i) {
    calm_total += calm[i];
    once_extra += once[i] - calm[i];
    twice_extra += twice[i] - calm[i];
  }
  ASSERT_GT(calm_total, 20);
  EXPECT_NEAR(once_extra, 0.5 * calm_total, 0.30 * calm_total);
  EXPECT_NEAR(twice_extra, 1.0 * calm_total, 0.30 * calm_total);

  // Independence: correlated draws would make the two-surge extra exactly
  // double the one-surge extra in *every* slot. Some slot must differ.
  bool any_slot_differs = false;
  for (std::size_t i = 0; i < calm.size(); ++i)
    any_slot_differs |= (twice[i] - calm[i]) != 2 * (once[i] - calm[i]);
  EXPECT_TRUE(any_slot_differs)
      << "overlapping surges cloned a perfectly correlated subset";
}

// --- partial / rolling drains -------------------------------------------

TEST(ScenarioTest, RollingMaintenanceSchedulesSequentialWindows) {
  const Scenario s = make_scenario("rolling-maintenance");
  ASSERT_EQ(s.disturbances.size(), 3u);
  int prev_end = -1;
  for (const auto& d : s.disturbances) {
    EXPECT_EQ(d.kind, NetworkEventKind::kDcDrain);
    EXPECT_DOUBLE_EQ(d.magnitude, 0.5);
    ASSERT_GT(d.duration_slots, 0);
    const int begin = d.day * core::kSlotsPerDay + d.slot_in_day;
    EXPECT_GT(begin, prev_end) << "maintenance phases must not overlap";
    prev_end = begin + d.duration_slots;
  }
  // Each phase drains a different DC.
  EXPECT_NE(s.disturbances[0].dc, s.disturbances[1].dc);
  EXPECT_NE(s.disturbances[1].dc, s.disturbances[2].dc);
}

// A half drain evacuates roughly half the calls a full drain would, since
// the evacuated subset is a fair per-call draw at the drain magnitude.
TEST(SimEngineTest, PartialDrainEvacuatesProportionalSubset) {
  Scenario s = small_scenario();
  s.name = "partial-drain";
  s.peak_slot_calls = 150.0;
  Disturbance drain;
  drain.kind = NetworkEventKind::kDcDrain;
  drain.day = 0;
  drain.slot_in_day = 22;  // 11:00, peak active population
  drain.dc = "netherlands";

  Scenario full = s;
  drain.magnitude = 0.0;
  full.disturbances.push_back(drain);
  Scenario half = s;
  half.name = "partial-drain-half";
  drain.magnitude = 0.5;
  half.disturbances.push_back(drain);

  const auto rf = SimEngine(full).run(2);
  const auto rh = SimEngine(half).run(2);
  ASSERT_GT(rf.forced_migrations, 20);
  // Binomial(n, 1/2) around half the full evacuation; 4 sigma of slack.
  const double n = static_cast<double>(rf.forced_migrations);
  EXPECT_NEAR(static_cast<double>(rh.forced_migrations), 0.5 * n, 4.0 * std::sqrt(0.25 * n));
  EXPECT_EQ(rh.leaked_calls, 0);

  // The partial drain halves plan capacity but keeps the DC alive: later
  // arrivals may still land there, so the half-drain run keeps serving
  // calls (no starvation) and stays deterministic across thread counts.
  const auto rh8 = SimEngine(half).run(8);
  EXPECT_EQ(rh.checksum, rh8.checksum);
}

// --- transit degrade + steering -----------------------------------------

TEST(SimEngineTest, TransitDegradeDrivesFailoverAndRecovery) {
  Scenario s = small_scenario();
  s.name = "degrade-small";
  s.peak_slot_calls = 250.0;  // enough Internet calls on the homed pairs
  Disturbance degrade;
  degrade.kind = NetworkEventKind::kTransitDegrade;
  degrade.day = 0;
  // Noon, aligned with a plan boundary (replan_interval 12): the whole
  // degrade sits inside one plan window, so no mid-degrade replan
  // reshuffles which pairs carry traffic on the congested transit — the
  // one-shot recovery assertion below needs that stability.
  degrade.slot_in_day = 24;
  degrade.duration_slots = 8;  // four congested hours
  degrade.country = "france";
  degrade.dc = "netherlands";
  degrade.magnitude = 0.05;  // 5% added loss, far past the 1% failover bar
  Scenario disturbed = s;
  disturbed.disturbances.push_back(degrade);

  SimEngine engine(disturbed);
  const auto r = engine.run(2);
  const auto calm = SimEngine(s).run(2);

  auto window_sum = [&](const std::vector<double>& v, int begin, int end) {
    double sum = 0.0;
    for (int i = begin; i < end; ++i) sum += v[static_cast<std::size_t>(i)];
    return sum;
  };

  // Route failovers (Internet -> WAN) fire during the degrade window, and
  // the engine answers §4.2-finding-6 style: pairs whose failover traced
  // to the congested transit are steered to an alternate provider — more
  // steering than background episodes alone produce, starting the moment
  // the degrade fires.
  EXPECT_GT(window_sum(r.streams.route_changes(), 24, 32), 0.0);
  const auto& steer = r.streams.transit_failovers();
  EXPECT_GT(window_sum(steer, 24, 32), window_sum(calm.streams.transit_failovers(), 24, 32));
  EXPECT_GT(window_sum(steer, 24, 26), 0.0);

  // Recovery: steering is one-shot per pair, so once the homed pairs with
  // traffic have moved off the congested transit, the back half of the
  // window steers no more than the front half (the fire is out).
  EXPECT_LE(window_sum(steer, 28, 32), window_sum(steer, 24, 28));

  // Determinism holds with the engine-level steering stream in play.
  const auto r8 = engine.run(8);
  EXPECT_EQ(r.checksum, r8.checksum);
  EXPECT_EQ(r.transit_failovers, r8.transit_failovers);
}

// --- multi-region scopes ------------------------------------------------

// The cross_region_fraction knob: among the multi-participant calls of the
// global scope, roughly the requested share spans two continents; a
// single-region scope emits none.
TEST(ScenarioTest, GlobalScopeEmitsCrossRegionCalls) {
  const geo::World world = geo::World::make();
  Scenario global = make_scenario("global-steady-week");
  global.training_weeks = 1;
  global.eval_days = 3;
  global.peak_slot_calls = 80.0;
  ASSERT_DOUBLE_EQ(global.cross_region_fraction, 0.15);

  const auto spans_continents = [&](const workload::CallConfig& config) {
    std::set<geo::Continent> continents;
    for (const auto& [country, count] : config.participants)
      continents.insert(world.country(country).continent);
    return continents.size() > 1;
  };
  const auto count_cross = [&](const workload::Trace& trace, std::size_t& multi,
                               std::size_t& cross) {
    for (const auto& call : trace.calls()) {
      const auto& config = trace.configs().get(call.config);
      int participants = 0;
      for (const auto& [country, count] : config.participants) participants += count;
      if (participants < 2) continue;
      ++multi;
      cross += spans_continents(config);
    }
  };

  std::size_t multi = 0, cross = 0;
  count_cross(build_workload(global, world).eval, multi, cross);
  ASSERT_GT(multi, 500u);
  EXPECT_NEAR(static_cast<double>(cross) / static_cast<double>(multi),
              global.cross_region_fraction, 0.04);

  // The single-region library scenarios stay continent-contained.
  std::size_t eu_multi = 0, eu_cross = 0;
  Scenario eu = small_scenario();
  count_cross(build_workload(eu, geo::World::make()).eval, eu_multi, eu_cross);
  ASSERT_GT(eu_multi, 0u);
  EXPECT_EQ(eu_cross, 0u);
}

// Region slices partition the totals: a single-region scenario books every
// arrival and every WAN byte to its one continent; the global scope books
// arrivals to exactly the three planning regions.
TEST(SimEngineTest, RegionSlicesPartitionTotals) {
  SimEngine engine(small_scenario());
  const auto r = engine.run(2);
  EXPECT_EQ(r.calls_by_region[static_cast<std::size_t>(geo::Continent::kEurope)], r.calls);
  EXPECT_GT(r.wan_gb_by_region[static_cast<std::size_t>(geo::Continent::kEurope)], 0.0);
  for (int region = 0; region < geo::kNumContinents; ++region) {
    if (region == static_cast<int>(geo::Continent::kEurope)) continue;
    EXPECT_EQ(r.calls_by_region[static_cast<std::size_t>(region)], 0);
    EXPECT_EQ(r.wan_gb_by_region[static_cast<std::size_t>(region)], 0.0);
  }

  Scenario global = make_scenario("global-steady-week");
  global.training_weeks = 1;
  global.eval_days = 1;
  global.peak_slot_calls = 40.0;
  global.shards = 8;
  global.oracle_counts = true;
  global.replan_interval_slots = 12;
  global.pipeline.scope.timeslots = 12;
  global.pipeline.scope.max_reduced_configs = 20;
  const auto g = SimEngine(global).run(2);
  std::int64_t total = 0;
  for (const auto n : g.calls_by_region) total += n;
  EXPECT_EQ(total, g.calls);
  for (const auto region : {geo::Continent::kNorthAmerica, geo::Continent::kEurope,
                            geo::Continent::kAsia})
    EXPECT_GT(g.calls_by_region[static_cast<std::size_t>(region)], 0)
        << geo::continent_name(region);
  EXPECT_EQ(g.calls_by_region[static_cast<std::size_t>(geo::Continent::kAfrica)], 0);
}

// The headline multi-region behaviour: when the NA fleet goes dark, its
// in-flight calls land on European DCs — EU in-flight strictly exceeds the
// undisturbed control run's during the cut window, NA in-flight drops to
// zero, and everything restores afterwards. Asserted on the per-region
// slot metrics, not eyeballed in bench output.
TEST(SimEngineTest, NaCutShiftsServingLoadToEurope) {
  Scenario s = make_scenario("na-cut-shifts-to-eu");
  s.training_weeks = 1;
  s.eval_days = 4;  // the outage spans day 2, slots 18..26
  s.peak_slot_calls = 60.0;
  s.shards = 8;
  s.oracle_counts = true;
  s.replan_interval_slots = 12;
  s.pipeline.scope.timeslots = 12;
  s.pipeline.scope.max_reduced_configs = 20;

  Scenario control = s;
  control.disturbances.clear();

  SimEngine engine(s);
  const auto cut = engine.run(2);
  const auto calm = SimEngine(control).run(2);
  EXPECT_EQ(cut.leaked_calls, 0);
  EXPECT_GT(cut.forced_migrations, 0);

  const int begin = 2 * core::kSlotsPerDay + 18;
  const int end = 2 * core::kSlotsPerDay + 26;
  const auto eu_cut = cut.streams.region_active_calls(geo::Continent::kEurope);
  const auto eu_calm = calm.streams.region_active_calls(geo::Continent::kEurope);
  const auto na_cut = cut.streams.region_active_calls(geo::Continent::kNorthAmerica);
  double eu_cut_window = 0.0, eu_calm_window = 0.0;
  for (int slot = begin; slot < end; ++slot) {
    eu_cut_window += eu_cut[static_cast<std::size_t>(slot)];
    eu_calm_window += eu_calm[static_cast<std::size_t>(slot)];
    // Every NA DC is fully drained: nothing can be *hosted* in NA.
    EXPECT_EQ(na_cut[static_cast<std::size_t>(slot)], 0.0) << "slot " << slot;
  }
  EXPECT_GT(eu_cut_window, eu_calm_window)
      << "the NA outage must shift in-flight calls onto European DCs";

  // The WAN GB slice tells the same story over the whole window.
  EXPECT_GT(cut.wan_gb_by_region[static_cast<std::size_t>(geo::Continent::kEurope)],
            calm.wan_gb_by_region[static_cast<std::size_t>(geo::Continent::kEurope)]);
  EXPECT_LT(cut.wan_gb_by_region[static_cast<std::size_t>(geo::Continent::kNorthAmerica)],
            calm.wan_gb_by_region[static_cast<std::size_t>(geo::Continent::kNorthAmerica)]);

  // After the restore the NA fleet serves again.
  double na_after = 0.0;
  for (int slot = end; slot < cut.eval_slots; ++slot)
    na_after += na_cut[static_cast<std::size_t>(slot)];
  EXPECT_GT(na_after, 0.0);
}

// --- warm-started replans -----------------------------------------------

// At the test/golden cadence the replan windows are disjoint (interval ==
// horizon): the warm-start cache transfers nothing and every replan takes
// the byte-identical cold path, so flipping the knob must not move a
// single bit of the SimResult. (The rolling-cadence case, where warm
// replans do engage and save iterations, is pinned in titannext_test.)
TEST(SimWarmReplanTest, DisjointWindowsMakeWarmAndColdRunsIdentical) {
  Scenario warm = small_scenario();
  ASSERT_TRUE(warm.warm_replans);  // the library default
  Scenario cold = small_scenario();
  cold.warm_replans = false;

  auto rw = SimEngine(warm).run(2);
  auto rc = SimEngine(cold).run(2);
  EXPECT_EQ(rw.checksum, rc.checksum);
  for (const auto& stat : rw.replan_stats) EXPECT_FALSE(stat.warm_started);
  ASSERT_EQ(rw.replan_stats.size(), rc.replan_stats.size());
  for (std::size_t i = 0; i < rw.replan_stats.size(); ++i)
    EXPECT_EQ(rw.replan_stats[i].iterations, rc.replan_stats[i].iterations) << "replan " << i;
  rw.zero_wallclock();
  rc.zero_wallclock();
  EXPECT_TRUE(rw == rc);
}

// --- golden checksums ---------------------------------------------------

// Frozen per-scenario checksums at a small fixed volume, asserted at 1, 2,
// and 8 worker threads: a determinism regression (or any behavioural
// drift) fails ctest, not just the benches. Regenerate by running this
// test and copying the "actual" values it prints on mismatch.
struct GoldenChecksum {
  const char* name;
  std::uint64_t checksum;
};

// All 12 entries were regenerated when the smooth-WRR credit-carryover
// bugfix landed: credit state now survives each replan's plan swap instead
// of restarting from zero, so every scenario's pick sequence changes after
// its first replan (the refactor to flat credit/recent-config state was
// verified bit-identical with the carry disabled before regenerating).
constexpr GoldenChecksum kGoldenChecksums[] = {
    {"steady-week", 0xdd13cdf28e4bdcf0ULL},
    {"weekend-transition", 0xadc58e66e411b123ULL},
    {"fiber-cut-failover", 0x7fadb0d03bd25f6bULL},
    {"dc-drain", 0x918a8191abe532cdULL},
    {"flash-crowd", 0x2c376fc19e761e26ULL},
    {"transit-degrade-failover", 0xb216a0de9f0383efULL},
    {"rolling-maintenance", 0x5e2f0ead6de294b7ULL},
    {"cut-then-flash-crowd", 0x6a3b89b6b43783b3ULL},
    {"na-steady-week", 0x1b1a056ee09d61f6ULL},
    {"asia-flash-crowd", 0x2f232b6454740da7ULL},
    {"global-steady-week", 0x139ce10f1184517eULL},
    {"na-cut-shifts-to-eu", 0x45e46c2d3e977519ULL},
    // Overload regime (admission control + anchored capacity).
    {"overload-sustained", 0x6fb311cb2c84d6c9ULL},
    {"regional-catastrophe", 0x13d75dccfda37637ULL},
    {"cascading-drain", 0x1cbe7a0e9cd7fd84ULL},
};

Scenario golden_config(const std::string& name) {
  Scenario s = make_scenario(name);
  s.training_weeks = 1;
  s.peak_slot_calls = 25.0;
  s.oracle_counts = true;  // skip Holt-Winters: cheap and platform-stable
  s.shards = 8;
  s.replan_interval_slots = 12;
  s.pipeline.scope.timeslots = 12;
  s.pipeline.scope.max_reduced_configs = 20;
  return s;
}

TEST(SimGoldenTest, ChecksumsMatchAtOneTwoAndEightThreads) {
  const auto& names = scenario_names();
  ASSERT_EQ(names.size(), std::size(kGoldenChecksums))
      << "new scenario? add its golden checksum";
  for (std::size_t i = 0; i < names.size(); ++i) {
    ASSERT_EQ(names[i], kGoldenChecksums[i].name);
    SimEngine engine(golden_config(names[i]));
    const auto r1 = engine.run(1);
    const auto r2 = engine.run(2);
    const auto r8 = engine.run(8);
    EXPECT_EQ(r1.checksum, r2.checksum) << names[i];
    EXPECT_EQ(r1.checksum, r8.checksum) << names[i];
    EXPECT_EQ(r1.leaked_calls, 0) << names[i];
    // Admission control only ever sheds or degrades in the overload
    // scenarios; every legacy scenario stays byte-for-byte rejection-free.
    if (!engine.scenario().admission_control) {
      EXPECT_EQ(r1.rejected_calls, 0) << names[i];
      EXPECT_EQ(r1.degraded_calls, 0) << names[i];
    }
    char actual[64];
    std::snprintf(actual, sizeof actual, "{\"%s\", 0x%016llxULL},", names[i].c_str(),
                  static_cast<unsigned long long>(r1.checksum));
    EXPECT_EQ(r1.checksum, kGoldenChecksums[i].checksum)
        << "golden drifted; updated entry: " << actual;
  }
}

// --- overload regime (admission control) --------------------------------

// The tentpole invariants of the overload regime, asserted on the sustained
// scenario at the golden scale: demand genuinely outruns anchored capacity
// (>= 1.5x integrated over a full simulated day), admission sheds and
// degrades without ever leaking a call, degradation engages before the
// first rejection, and the shed is fair per region (bounded by max_shed;
// regions without arrivals shed nothing).
TEST(SimOverloadTest, SustainedOverloadShedsFairlyWithoutLeaks) {
  const Scenario s = golden_config("overload-sustained");
  ASSERT_TRUE(s.admission_control);
  ASSERT_TRUE(s.capacity_anchor);
  SimEngine engine(s);
  const auto r = engine.run(2);

  // Offered demand vs. anchored capacity, integrated per simulated day.
  const auto counts = engine.eval_trace().config_active_counts();
  const auto& configs = engine.eval_trace().configs();
  const double capacity =
      engine.capacity_anchor_cores() * s.pipeline.scope.compute_headroom;
  ASSERT_GT(capacity, 0.0);
  const int days = r.eval_slots / core::kSlotsPerDay;
  ASSERT_GE(days, 1);
  bool saw_overloaded_day = false;
  for (int d = 0; d < days; ++d) {
    double offered = 0.0;
    for (int t = d * core::kSlotsPerDay; t < (d + 1) * core::kSlotsPerDay; ++t)
      for (std::size_t c = 0; c < counts.size(); ++c)
        offered += counts[c][static_cast<std::size_t>(t)] *
                   configs.get(core::ConfigId(static_cast<int>(c))).compute_cores();
    saw_overloaded_day |= offered >= 1.5 * capacity * core::kSlotsPerDay;
  }
  EXPECT_TRUE(saw_overloaded_day)
      << "no simulated day sustained demand >= 1.5x aggregate capacity";

  // Overload bites, and the lifecycle survives it untouched.
  EXPECT_EQ(r.leaked_calls, 0);
  EXPECT_GT(r.rejected_calls, 0);
  EXPECT_GT(r.degraded_calls, 0);

  // Quality degradation is attempted before any rejection: the first slot
  // with a degraded admission is no later than the first slot with a shed.
  const auto first_nonzero = [](const std::vector<double>& stream) {
    for (std::size_t i = 0; i < stream.size(); ++i)
      if (stream[i] > 0.0) return static_cast<int>(i);
    return -1;
  };
  const int first_degraded = first_nonzero(r.streams.degraded());
  const int first_rejected = first_nonzero(r.streams.rejected());
  ASSERT_GE(first_degraded, 0);
  ASSERT_GE(first_rejected, 0);
  EXPECT_LE(first_degraded, first_rejected);

  // Per-region fairness: the realized shed fraction never exceeds the
  // max_shed cap (no region is starved), and a region that offered no
  // calls cannot have shed any.
  for (int reg = 0; reg < geo::kNumContinents; ++reg) {
    const auto region = static_cast<geo::Continent>(reg);
    const auto ri = static_cast<std::size_t>(reg);
    EXPECT_LE(r.shed_fraction(region), s.admission_max_shed) << "region " << reg;
    if (r.calls_by_region[ri] == 0) EXPECT_EQ(r.rejected_by_region[ri], 0);
    EXPECT_EQ(static_cast<double>(r.rejected_by_region[ri]),
              r.streams.region_rejected_total(region));
    EXPECT_EQ(static_cast<double>(r.degraded_by_region[ri]),
              r.streams.region_degraded_total(region));
  }
  // The per-slot streams and the run counters tell one story.
  const double stream_rejected =
      std::accumulate(r.streams.rejected().begin(), r.streams.rejected().end(), 0.0);
  const double stream_degraded =
      std::accumulate(r.streams.degraded().begin(), r.streams.degraded().end(), 0.0);
  EXPECT_EQ(static_cast<double>(r.rejected_calls), stream_rejected);
  EXPECT_EQ(static_cast<double>(r.degraded_calls), stream_degraded);
}

// Compound catastrophes must shed/degrade (the point of the templates) and
// still satisfy the lifecycle invariant — including force-rejects of calls
// stranded by the drains with nowhere live left to land.
TEST(SimOverloadTest, CompoundCatastrophesShedWithoutLeaks) {
  for (const char* name : {"regional-catastrophe", "cascading-drain"}) {
    SimEngine engine(golden_config(name));
    const auto r = engine.run(2);
    EXPECT_EQ(r.leaked_calls, 0) << name;
    EXPECT_GT(r.rejected_calls + r.degraded_calls, 0) << name;
    for (int reg = 0; reg < geo::kNumContinents; ++reg) {
      const auto ri = static_cast<std::size_t>(reg);
      if (r.calls_by_region[ri] == 0) EXPECT_EQ(r.rejected_by_region[ri], 0) << name;
    }
  }
}

// Backward compatibility of the region-set refactor: a single-continent
// Europe scope built explicitly through the new RegionSet API (vector
// constructor, not the implicit Continent conversion the scenario defaults
// use) reproduces the exact pre-refactor checksums for all eight original
// scenarios. The values are the same frozen goldens — committed before
// PlanScope grew regions — so any byte of drift in the single-region path
// fails here.
// --- observability ------------------------------------------------------

// The zero_wallclock() masking contract for the new perf block: every
// wall-clock field (phase totals, LP breakdown, per-replan breakdown, the
// assignment-latency histogram) participates in operator== and is zeroed
// by the mask, while the deterministic perf fields stay live.
TEST(SimObsTest, ZeroWallclockMasksEveryPerfTimingField) {
  SimResult a = SimEngine(small_scenario()).run(2);
  SimResult b = a;
  ASSERT_TRUE(a == b);

  // Perturb each wall-clock field in turn: equality must notice (the
  // fields are genuinely compared, not forgotten by operator==)...
  for (double* field : {&b.perf.event_apply_seconds, &b.perf.metric_aggregation_seconds,
                        &b.perf.replan_seconds, &b.perf.shard_work_seconds,
                        &b.perf.lp_build_seconds, &b.perf.lp_phase1_seconds,
                        &b.perf.lp_phase2_seconds, &b.perf.lp_refactor_seconds}) {
    const double saved = *field;
    *field += 1.0;
    EXPECT_FALSE(a == b);
    *field = saved;
  }
  b.perf.assign_latency_us.record(42.0);
  EXPECT_FALSE(a == b);
  ASSERT_FALSE(b.replan_stats.empty());
  b.replan_stats[0].refactor_seconds += 1.0;
  EXPECT_FALSE(a == b);

  // ...and zero_wallclock() must erase every one of those differences.
  a.zero_wallclock();
  b.zero_wallclock();
  EXPECT_TRUE(a == b);
  EXPECT_EQ(b.perf.assign_latency_us.total_count(), 0u);

  // Deterministic perf content survives the mask: it is exactly what the
  // cross-thread determinism tests rely on.
  EXPECT_GT(a.perf.events_processed, 0);
  EXPECT_GT(a.perf.call_duration_slots.total_count(), 0u);
}

// Full-result determinism across thread counts now includes the perf
// block: the merged deterministic histogram (call durations, merged in
// shard index order) and the event count must be bit-identical at 1, 2,
// and 8 workers — this is the engine-level merge-path coverage behind the
// unit-level ObsHistogramTest.MergeIsInvariantToSplitAndOrder.
TEST(SimObsTest, DeterministicPerfFieldsAreThreadInvariant) {
  SimEngine engine(small_scenario());
  auto r1 = engine.run(1);
  auto r2 = engine.run(2);
  auto r8 = engine.run(8);

  EXPECT_EQ(r1.perf.events_processed, r8.perf.events_processed);
  EXPECT_TRUE(r1.perf.call_duration_slots == r8.perf.call_duration_slots);

  r1.zero_wallclock();
  r2.zero_wallclock();
  r8.zero_wallclock();
  EXPECT_TRUE(r1 == r2);
  EXPECT_TRUE(r1 == r8);
}

// Perf counters measure the workload the run actually processed: one
// duration sample per arriving call, one latency sample per assignment
// decision (arrival + convergence), all three call events drained.
TEST(SimObsTest, PerfCountsMatchTheWorkload) {
  const SimResult r = SimEngine(small_scenario()).run(2);
  ASSERT_GT(r.calls, 0);
  EXPECT_EQ(r.perf.call_duration_slots.total_count(),
            static_cast<std::size_t>(r.calls));
  // Up to arrival + convergence + end per call; events clamped past the
  // eval horizon may stay queued, so the exact count can fall just short.
  EXPECT_LE(r.perf.events_processed, 3 * r.calls);
  EXPECT_GE(r.perf.events_processed, 2 * r.calls);
  EXPECT_GE(r.perf.assign_latency_us.total_count(),
            static_cast<std::size_t>(r.calls));
  EXPECT_GT(r.perf.assign_latency_us.max(), 0.0);
  EXPECT_GT(r.wall_seconds, 0.0);
  EXPECT_GT(r.calls_per_sec(), 0.0);
  EXPECT_GT(r.events_per_sec(), 0.0);
}

// Attaching a TraceRecorder is observation, not perturbation: the run's
// checksum must not move, and the recorder must come back with the
// documented lanes populated (engine phases + per-shard jobs).
TEST(SimObsTest, TracingDoesNotPerturbTheRunAndRecordsAllLanes) {
  const Scenario s = small_scenario();
  const auto plain = SimEngine(s).run(2);

  obs::TraceRecorder trace;
  SimEngine engine(s);
  engine.set_trace(&trace);
  const auto traced = engine.run(2);

  EXPECT_EQ(plain.checksum, traced.checksum);
  EXPECT_GT(trace.size(), 0u);
  std::set<int> lanes;
  bool saw_replan = false;
  for (const auto& e : trace.events()) {
    lanes.insert(e.lane);
    saw_replan |= (e.name == "replan");
    EXPECT_GE(e.duration_us, 0.0);
  }
  EXPECT_TRUE(lanes.count(0)) << "engine lane missing";
  EXPECT_TRUE(lanes.count(1)) << "shard lanes missing";
  EXPECT_TRUE(saw_replan);
}

TEST(SimGoldenTest, EuropeRegionSetScopeReproducesPreRefactorChecksums) {
  constexpr std::size_t kPreRefactorScenarios = 8;
  ASSERT_GE(std::size(kGoldenChecksums), kPreRefactorScenarios);
  for (std::size_t i = 0; i < kPreRefactorScenarios; ++i) {
    Scenario s = golden_config(kGoldenChecksums[i].name);
    s.pipeline.scope.regions =
        geo::RegionSet(std::vector<geo::Continent>{geo::Continent::kEurope});
    ASSERT_TRUE(s.pipeline.scope.regions.single());
    ASSERT_TRUE(s.pipeline.scope.regions.contains(geo::Continent::kEurope));
    SimEngine engine(s);
    EXPECT_EQ(engine.run(2).checksum, kGoldenChecksums[i].checksum)
        << kGoldenChecksums[i].name
        << ": the region-set scope changed single-continent behaviour";
  }
}

}  // namespace
}  // namespace titan::sim
